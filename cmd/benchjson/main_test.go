package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: mmr
BenchmarkRouterStep-8          	 1000000	       950.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetworkStep/mesh4x4-8 	   50000	     21000 ns/op	      12 B/op	       1 allocs/op
BenchmarkFigure3-8             	       3	 400000000 ns/op	        0.123 jitter-biased8C@0.9
this line is noise
BenchmarkOddFields 12 trailing
`

func parseString(t *testing.T, s string) map[string]Benchmark {
	t.Helper()
	b, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParse(t *testing.T) {
	b := parseString(t, benchOutput)
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(b), b)
	}
	rs, ok := b["RouterStep"]
	if !ok {
		t.Fatal("RouterStep missing (cpu suffix not stripped?)")
	}
	if rs.Iters != 1000000 || rs.Metrics["ns/op"] != 950 || rs.Metrics["allocs/op"] != 0 {
		t.Errorf("RouterStep parsed wrong: %+v", rs)
	}
	if ns, ok := b["NetworkStep/mesh4x4"]; !ok || ns.Metrics["allocs/op"] != 1 {
		t.Errorf("NetworkStep parsed wrong: %+v", b["NetworkStep/mesh4x4"])
	}
	// Custom paper-shape metrics survive alongside ns/op.
	if f3 := b["Figure3"]; f3.Metrics["jitter-biased8C@0.9"] != 0.123 {
		t.Errorf("custom metric lost: %+v", f3)
	}
	if _, ok := b["OddFields"]; ok {
		t.Error("malformed odd-field line should be skipped, not parsed")
	}
}

func TestRecordPreservesOtherSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	pre := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n")
	if err := record(pre, path, "pre-pr", "seed"); err != nil {
		t.Fatal(err)
	}
	cur := parseString(t, "BenchmarkRouterStep-8 10 1100 ns/op 0 B/op 0 allocs/op\n")
	if err := record(cur, path, "current", ""); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != "mmr-bench/v1" {
		t.Errorf("schema = %q", f.Schema)
	}
	if got := f.Sections["pre-pr"].Benchmarks["RouterStep"].Metrics["ns/op"]; got != 1000 {
		t.Errorf("pre-pr section clobbered: ns/op = %v, want 1000", got)
	}
	if got := f.Sections["current"].Benchmarks["RouterStep"].Metrics["ns/op"]; got != 1100 {
		t.Errorf("current section wrong: ns/op = %v, want 1100", got)
	}
}

// writeBaseline records `bench` lines into a temp BENCH file's "current"
// section and returns its path.
func writeBaseline(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := record(parseString(t, lines), path, "current", ""); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassAndRegression(t *testing.T) {
	base := writeBaseline(t, "BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n")

	var out strings.Builder
	ok := parseString(t, "BenchmarkRouterStep-8 10 1050 ns/op 0 B/op 0 allocs/op\n")
	if err := check(&out, ok, base, "current", 0.10, false); err != nil {
		t.Errorf("5%% slower within 10%% tol should pass: %v\n%s", err, out.String())
	}

	out.Reset()
	slow := parseString(t, "BenchmarkRouterStep-8 10 1500 ns/op 0 B/op 0 allocs/op\n")
	if err := check(&out, slow, base, "current", 0.10, false); err == nil {
		t.Errorf("50%% regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: ns/op regressed") {
		t.Errorf("no regression verdict printed:\n%s", out.String())
	}

	out.Reset()
	allocs := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op 64 B/op 2 allocs/op\n")
	if err := check(&out, allocs, base, "current", 0.10, false); err == nil {
		t.Errorf("zero-alloc benchmark now allocating passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "now allocates") {
		t.Errorf("no alloc verdict printed:\n%s", out.String())
	}
}

// TestCheckMissingBaselineBenchmark: a baseline benchmark absent from
// stdin fails the gate (no more vacuous passes on the intersection) and
// names the missing benchmark; -allow-missing downgrades it to a warning.
func TestCheckMissingBaselineBenchmark(t *testing.T) {
	base := writeBaseline(t,
		"BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n"+
			"BenchmarkNetworkStep-8 10 20000 ns/op 0 B/op 0 allocs/op\n")
	partial := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n")

	var out strings.Builder
	if err := check(&out, partial, base, "current", 0.10, false); err == nil {
		t.Errorf("missing baseline benchmark passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from this run: NetworkStep") {
		t.Errorf("missing benchmark not named:\n%s", out.String())
	}

	out.Reset()
	if err := check(&out, partial, base, "current", 0.10, true); err != nil {
		t.Errorf("-allow-missing should downgrade to a warning: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "warning:") || !strings.Contains(out.String(), "NetworkStep") {
		t.Errorf("no warning naming the missing benchmark:\n%s", out.String())
	}
}

// TestCheckNoOverlap: disjoint name sets report both sides.
func TestCheckNoOverlap(t *testing.T) {
	base := writeBaseline(t, "BenchmarkRouterStep-8 10 1000 ns/op\n")
	other := parseString(t, "BenchmarkSomethingElse-8 10 5 ns/op\n")
	var out strings.Builder
	err := check(&out, other, base, "current", 0.10, false)
	if err == nil {
		t.Fatal("disjoint benchmark sets passed")
	}
	for _, want := range []string{"RouterStep", "SomethingElse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
}
