package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: mmr
BenchmarkRouterStep-8          	 1000000	       950.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetworkStep/mesh4x4-8 	   50000	     21000 ns/op	      12 B/op	       1 allocs/op
BenchmarkFigure3-8             	       3	 400000000 ns/op	        0.123 jitter-biased8C@0.9
this line is noise
BenchmarkOddFields 12 trailing
`

// testHost is a fixed shape so check-mode tests exercise the host
// warning deterministically regardless of the machine running them.
var testHost = Host{NumCPU: 4, GoMaxProcs: 4, CPU: "test-cpu"}

func parseString(t *testing.T, s string) map[string]Benchmark {
	t.Helper()
	b, _, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParse(t *testing.T) {
	b := parseString(t, benchOutput)
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(b), b)
	}
	rs, ok := b["RouterStep"]
	if !ok {
		t.Fatal("RouterStep missing (cpu suffix not stripped?)")
	}
	if rs.Iters != 1000000 || rs.Metrics["ns/op"] != 950 || rs.Metrics["allocs/op"] != 0 {
		t.Errorf("RouterStep parsed wrong: %+v", rs)
	}
	if ns, ok := b["NetworkStep/mesh4x4"]; !ok || ns.Metrics["allocs/op"] != 1 {
		t.Errorf("NetworkStep parsed wrong: %+v", b["NetworkStep/mesh4x4"])
	}
	// Custom paper-shape metrics survive alongside ns/op.
	if f3 := b["Figure3"]; f3.Metrics["jitter-biased8C@0.9"] != 0.123 {
		t.Errorf("custom metric lost: %+v", f3)
	}
	if _, ok := b["OddFields"]; ok {
		t.Error("malformed odd-field line should be skipped, not parsed")
	}
}

func TestRecordPreservesOtherSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	pre := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n")
	if err := record(pre, testHost, path, "pre-pr", "seed"); err != nil {
		t.Fatal(err)
	}
	cur := parseString(t, "BenchmarkRouterStep-8 10 1100 ns/op 0 B/op 0 allocs/op\n")
	if err := record(cur, testHost, path, "current", ""); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != "mmr-bench/v1" {
		t.Errorf("schema = %q", f.Schema)
	}
	if got := f.Sections["pre-pr"].Benchmarks["RouterStep"].Metrics["ns/op"]; got != 1000 {
		t.Errorf("pre-pr section clobbered: ns/op = %v, want 1000", got)
	}
	if got := f.Sections["current"].Benchmarks["RouterStep"].Metrics["ns/op"]; got != 1100 {
		t.Errorf("current section wrong: ns/op = %v, want 1100", got)
	}
}

// writeBaseline records `bench` lines into a temp BENCH file's "current"
// section and returns its path.
func writeBaseline(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := record(parseString(t, lines), testHost, path, "current", ""); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassAndRegression(t *testing.T) {
	base := writeBaseline(t, "BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n")

	var out strings.Builder
	ok := parseString(t, "BenchmarkRouterStep-8 10 1050 ns/op 0 B/op 0 allocs/op\n")
	if err := check(&out, ok, testHost, base, "current", 0.10, false); err != nil {
		t.Errorf("5%% slower within 10%% tol should pass: %v\n%s", err, out.String())
	}

	out.Reset()
	slow := parseString(t, "BenchmarkRouterStep-8 10 1500 ns/op 0 B/op 0 allocs/op\n")
	if err := check(&out, slow, testHost, base, "current", 0.10, false); err == nil {
		t.Errorf("50%% regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: ns/op regressed") {
		t.Errorf("no regression verdict printed:\n%s", out.String())
	}

	out.Reset()
	allocs := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op 64 B/op 2 allocs/op\n")
	if err := check(&out, allocs, testHost, base, "current", 0.10, false); err == nil {
		t.Errorf("zero-alloc benchmark now allocating passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "now allocates") {
		t.Errorf("no alloc verdict printed:\n%s", out.String())
	}
}

// TestCheckMissingBaselineBenchmark: a baseline benchmark absent from
// stdin fails the gate (no more vacuous passes on the intersection) and
// names the missing benchmark; -allow-missing downgrades it to a warning.
func TestCheckMissingBaselineBenchmark(t *testing.T) {
	base := writeBaseline(t,
		"BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n"+
			"BenchmarkNetworkStep-8 10 20000 ns/op 0 B/op 0 allocs/op\n")
	partial := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op 0 B/op 0 allocs/op\n")

	var out strings.Builder
	if err := check(&out, partial, testHost, base, "current", 0.10, false); err == nil {
		t.Errorf("missing baseline benchmark passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from this run: NetworkStep") {
		t.Errorf("missing benchmark not named:\n%s", out.String())
	}

	out.Reset()
	if err := check(&out, partial, testHost, base, "current", 0.10, true); err != nil {
		t.Errorf("-allow-missing should downgrade to a warning: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "warning:") || !strings.Contains(out.String(), "NetworkStep") {
		t.Errorf("no warning naming the missing benchmark:\n%s", out.String())
	}
}

// TestCheckNoOverlap: disjoint name sets report both sides.
func TestCheckNoOverlap(t *testing.T) {
	base := writeBaseline(t, "BenchmarkRouterStep-8 10 1000 ns/op\n")
	other := parseString(t, "BenchmarkSomethingElse-8 10 5 ns/op\n")
	var out strings.Builder
	err := check(&out, other, testHost, base, "current", 0.10, false)
	if err == nil {
		t.Fatal("disjoint benchmark sets passed")
	}
	for _, want := range []string{"RouterStep", "SomethingElse"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
}

// TestParseCPULine: the go test "cpu:" header line is captured for
// host provenance.
func TestParseCPULine(t *testing.T) {
	_, cpu, err := parse(bufio.NewScanner(strings.NewReader(
		"cpu: Intel(R) Xeon(R) CPU @ 2.20GHz\nBenchmarkRouterStep-8 10 1000 ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) CPU @ 2.20GHz" {
		t.Errorf("cpu line = %q", cpu)
	}
}

// TestRecordHostProvenance: record mode stamps the section with the
// machine shape so later checks can detect cross-host comparisons.
func TestRecordHostProvenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	b := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op\n")
	if err := record(b, testHost, path, "current", ""); err != nil {
		t.Fatal(err)
	}
	f, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Sections["current"].Host
	if h == nil || h.NumCPU != 4 || h.GoMaxProcs != 4 || h.CPU != "test-cpu" {
		t.Errorf("host provenance not recorded: %+v", h)
	}
}

// TestCheckHostShapeWarning: a baseline recorded on a different
// machine shape warns (but does not fail) — the numbers still gate,
// the mismatch is just made visible.
func TestCheckHostShapeWarning(t *testing.T) {
	base := writeBaseline(t, "BenchmarkRouterStep-8 10 1000 ns/op\n")
	same := parseString(t, "BenchmarkRouterStep-8 10 1000 ns/op\n")

	var out strings.Builder
	if err := check(&out, same, testHost, base, "current", 0.10, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "host shape differs") {
		t.Errorf("same host shape warned:\n%s", out.String())
	}

	out.Reset()
	oneCPU := Host{NumCPU: 1, GoMaxProcs: 1, CPU: "test-cpu"}
	if err := check(&out, same, oneCPU, base, "current", 0.10, false); err != nil {
		t.Errorf("host mismatch must warn, not fail: %v", err)
	}
	if !strings.Contains(out.String(), "host shape differs") {
		t.Errorf("no host-shape warning:\n%s", out.String())
	}
}

const scaleOutput = `BenchmarkNetworkStepScaling/w=1-4 10 8000 ns/op 0 B/op 0 allocs/op
BenchmarkNetworkStepScaling/w=2-4 10 5000 ns/op 0 B/op 0 allocs/op
BenchmarkNetworkStepScaling/w=4-4 10 4000 ns/op 0 B/op 0 allocs/op
BenchmarkNetworkStep-4 10 9000 ns/op 0 B/op 0 allocs/op
`

// TestScaleGate: efficiency rows are computed against the w=1 serial
// row and gated at -min-eff; w=2 here scales at 8000/(5000·2)=0.80 and
// w=4 at 8000/(4000·4)=0.50.
func TestScaleGate(t *testing.T) {
	b := parseString(t, scaleOutput)

	var out strings.Builder
	if err := checkScale(&out, b, testHost, "NetworkStepScaling", 0.35); err != nil {
		t.Errorf("eff 0.80/0.50 above floor 0.35 should pass: %v\n%s", err, out.String())
	}

	out.Reset()
	if err := checkScale(&out, b, testHost, "NetworkStepScaling", 0.60); err == nil {
		t.Errorf("w=4 eff 0.50 below floor 0.60 passed:\n%s", out.String())
	} else if !strings.Contains(out.String(), "FAIL: efficiency") {
		t.Errorf("no efficiency verdict printed:\n%s", out.String())
	}
}

// TestScaleGateHostTooSmall: rows with more workers than the host has
// CPUs are informational, never failures — a 1-CPU container cannot
// demonstrate scaling, and pretending otherwise would either fake the
// numbers or flake the gate.
func TestScaleGateHostTooSmall(t *testing.T) {
	b := parseString(t, scaleOutput)
	var out strings.Builder
	oneCPU := Host{NumCPU: 1, GoMaxProcs: 1}
	if err := checkScale(&out, b, oneCPU, "NetworkStepScaling", 0.95); err != nil {
		t.Errorf("w>NumCPU rows must not gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "informational") {
		t.Errorf("no informational note for over-provisioned rows:\n%s", out.String())
	}
}

// TestScaleGateAllocs: a scaling row that allocates in steady state
// fails regardless of efficiency — the worker shards must stay
// allocation-free at every width.
func TestScaleGateAllocs(t *testing.T) {
	b := parseString(t, "BenchmarkNetworkStepScaling/w=1-4 10 8000 ns/op 0 B/op 0 allocs/op\n"+
		"BenchmarkNetworkStepScaling/w=2-4 10 5000 ns/op 64 B/op 2 allocs/op\n")
	var out strings.Builder
	if err := checkScale(&out, b, testHost, "NetworkStepScaling", 0.35); err == nil {
		t.Errorf("allocating scaling row passed:\n%s", out.String())
	} else if !strings.Contains(out.String(), "allocates in steady state") {
		t.Errorf("no alloc verdict printed:\n%s", out.String())
	}
}

// TestScaleGateNoSerialRow: without a w=1 row there is nothing to
// normalize against.
func TestScaleGateNoSerialRow(t *testing.T) {
	b := parseString(t, "BenchmarkNetworkStepScaling/w=2-4 10 5000 ns/op\n")
	var out strings.Builder
	if err := checkScale(&out, b, testHost, "NetworkStepScaling", 0.35); err == nil {
		t.Error("missing w=1 row passed")
	}
}

const footprintOutput = `BenchmarkFabricFootprint-8 1 120000 ns/op 280511 bytes/router 592 bytes/flow
BenchmarkOpenBatch-8 1000 932135 ns/op 2560 sessions/op
`

func TestMaxGatePassAndOverBudget(t *testing.T) {
	b := parseString(t, footprintOutput)
	var out strings.Builder
	if err := checkMax(&out, b, "bytes/router=600000,bytes/flow=1200"); err != nil {
		t.Errorf("within-budget metrics failed: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := checkMax(&out, b, "bytes/flow=500"); err == nil {
		t.Errorf("over-budget bytes/flow passed:\n%s", out.String())
	} else if !strings.Contains(out.String(), "over budget") {
		t.Errorf("no over-budget verdict printed:\n%s", out.String())
	}
}

// TestMaxGateMissingMetric: a gated metric reported by no benchmark is
// a gate-integrity failure — the benchmark was renamed or filtered out
// and the budget would otherwise pass vacuously.
func TestMaxGateMissingMetric(t *testing.T) {
	b := parseString(t, footprintOutput)
	var out strings.Builder
	if err := checkMax(&out, b, "bytes/nonexistent=100"); err == nil {
		t.Errorf("absent metric passed:\n%s", out.String())
	}
}

func TestMaxGateBadSpec(t *testing.T) {
	b := parseString(t, footprintOutput)
	for _, spec := range []string{"bytes/router", "bytes/router=abc", "=5", "bytes/router=-1"} {
		var out strings.Builder
		if err := checkMax(&out, b, spec); err == nil {
			t.Errorf("malformed spec %q accepted", spec)
		}
	}
}
