// Command mmrnet simulates a multi-router MMR fabric: it builds a
// topology, opens randomly placed connections with EPB establishment,
// optionally adds best-effort traffic, runs the flit-level datapath and
// prints end-to-end statistics.
//
// Examples:
//
//	mmrnet -topo mesh -w 4 -h 4 -conns 64
//	mmrnet -topo irregular -nodes 16 -degree 3 -conns 100 -be 0.01
//	mmrnet -topo torus -w 4 -h 4 -conns 80 -rate 55
//
// Fault injection (see docs/faults.md):
//
//	mmrnet -topo irregular -conns 64 -fault-links 3 -fault-downtime 5000
//	mmrnet -topo mesh -conns 48 -fault-mtbf 20000 -fault-mttr 2000
//	mmrnet -topo mesh -conns 48 -fault-links 2 -no-restore -fault-drop 0.001
//
// Live observability (see docs/observability.md):
//
//	mmrnet -conns 64 -cycles 500000 -metrics-addr :9090
//	mmrnet -conns 48 -fault-links 2 -metrics-interval 10000 -flight-dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/metrics"
	"mmr/internal/network"
	"mmr/internal/routing"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

// simOpts carries everything main's flags configure, so run is callable
// (and testable) without a flag.FlagSet or a process exit.
type simOpts struct {
	topo          string
	w, h          int
	nodes, degree int
	ports         int
	ftK           int
	dfA, dfP, dfH int
	route         string
	conns         int
	rate          float64
	vbr           float64
	be            float64
	cycles        int64
	warmup        int64
	vcs           int
	seed          uint64
	netWorkers    int
	netShards     int
	noIdleSkip    bool

	faultLinks    int
	faultDowntime int64
	faultMTBF     float64
	faultMTTR     float64
	faultDrop     float64
	faultSeed     uint64
	noRestore     bool
	noDegrade     bool

	metricsAddr     string // serve /metrics, /metrics.json, /flight, /debug/pprof on this address
	metricsInterval int64  // print a progress summary to diag every N measured cycles (0 = off)
	flightDump      bool   // dump the flight recorder to diag on every fault transition

	// Daemon mode (daemon.go): -serve runs the fabric behind an HTTP
	// control API instead of a batch simulation.
	serve              bool
	serveAddr          string
	checkpoint         string        // snapshot path (periodic + final on drain)
	checkpointInterval int64         // cycles between periodic snapshots (0 = final only)
	restore            bool          // resume the fabric from -checkpoint at startup
	pace               time.Duration // wall-clock duration of one flit cycle (0 = free-run)

	// afterRun, when non-nil, is called after the final snapshot is
	// published and the report printed, while the metrics server (addr)
	// is still serving. Tests use it to scrape the live endpoint.
	afterRun func(addr string, n *network.Network)
	// afterServe, when non-nil, is called with the daemon's bound listen
	// address once the control API is up. Tests use it to find the port.
	afterServe func(addr string)
	// sigc, when non-nil, delivers SIGINT/SIGTERM: a batch run flushes
	// the flight recorders and prints a partial report; the daemon
	// drains gracefully (final checkpoint + flight flush).
	sigc <-chan os.Signal
}

func defaultOpts() simOpts {
	return simOpts{
		topo: "mesh", w: 4, h: 4, nodes: 16, degree: 3, ports: 4,
		ftK: 4, dfA: 4, dfP: 2, dfH: 2, route: "minimal",
		conns: 48, cycles: 50_000, warmup: 10_000, vcs: 64, seed: 1,
		netWorkers: runtime.GOMAXPROCS(0), faultDowntime: 5000, faultMTTR: 1000,
		serveAddr: "127.0.0.1:9191",
	}
}

// buildTopology constructs the topology the flags describe. Irregular
// topologies draw their wiring from rng, so the caller controls whether
// those draws share a stream with later placement decisions.
func buildTopology(o simOpts, rng *sim.RNG) (*topology.Topology, error) {
	switch o.topo {
	case "mesh":
		return topology.Mesh(o.w, o.h, o.ports)
	case "torus":
		return topology.Torus(o.w, o.h, o.ports)
	case "irregular":
		return topology.Irregular(o.nodes, o.ports, o.degree, rng)
	case "fattree":
		return topology.FatTree(o.ftK)
	case "dragonfly":
		return topology.Dragonfly(o.dfA, o.dfP, o.dfH)
	default:
		return nil, fmt.Errorf("unknown topology %q", o.topo)
	}
}

// routeMode parses the -route flag.
func routeMode(s string) (routing.RouteMode, error) {
	switch s {
	case "", "minimal":
		return routing.RouteMinimal, nil
	case "valiant":
		return routing.RouteValiant, nil
	case "ugal":
		return routing.RouteUGAL, nil
	default:
		return 0, fmt.Errorf("unknown route mode %q (want minimal, valiant or ugal)", s)
	}
}

// buildConfig maps the flags onto a network config. Batch runs and the
// daemon share it, so a daemon restarted with the same flags hashes to
// the same fabric configuration and can restore its checkpoints.
func buildConfig(o simOpts, tp *topology.Topology) network.Config {
	cfg := network.DefaultConfig(tp)
	cfg.Route, _ = routeMode(o.route) // validated before any config is built
	cfg.VCs = o.vcs
	cfg.Seed = o.seed
	cfg.Workers = o.netWorkers
	cfg.Shards = o.netShards
	cfg.NoIdleSkip = o.noIdleSkip
	cfg.Fault.Restore = !o.noRestore
	cfg.Fault.Degrade = !o.noDegrade
	return cfg
}

// validateOpts rejects nonsensical or contradictory flag combinations
// before any simulation state is built. set holds the names of flags the
// user passed explicitly (flag.Visit), so defaults never trip the
// mode-contradiction checks.
func validateOpts(o simOpts, set map[string]bool) error {
	switch {
	case o.netWorkers < 1:
		return fmt.Errorf("-net-workers must be at least 1, got %d", o.netWorkers)
	case o.netShards < 0:
		return fmt.Errorf("-shards must be non-negative, got %d", o.netShards)
	case o.vcs < 1:
		return fmt.Errorf("-vcs must be at least 1, got %d", o.vcs)
	case o.ports < 1:
		return fmt.Errorf("-ports must be at least 1, got %d", o.ports)
	case o.conns < 0:
		return fmt.Errorf("-conns must be non-negative, got %d", o.conns)
	case o.cycles < 0 || o.warmup < 0:
		return fmt.Errorf("-cycles and -warmup must be non-negative, got %d and %d", o.cycles, o.warmup)
	case o.rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %g", o.rate)
	case o.vbr < 0 || o.vbr > 1:
		return fmt.Errorf("-vbr is a fraction in [0,1], got %g", o.vbr)
	case o.be < 0:
		return fmt.Errorf("-be must be non-negative, got %g", o.be)
	case o.faultLinks < 0 || o.faultDowntime < 0:
		return fmt.Errorf("-fault-links and -fault-downtime must be non-negative")
	case o.faultMTBF < 0 || o.faultMTTR < 0:
		return fmt.Errorf("-fault-mtbf and -fault-mttr must be non-negative")
	case o.faultDrop < 0 || o.faultDrop > 1:
		return fmt.Errorf("-fault-drop is a probability in [0,1], got %g", o.faultDrop)
	case o.metricsInterval < 0:
		return fmt.Errorf("-metrics-interval must be non-negative, got %d", o.metricsInterval)
	case o.checkpointInterval < 0:
		return fmt.Errorf("-checkpoint-interval must be non-negative, got %d", o.checkpointInterval)
	}
	if _, err := routeMode(o.route); err != nil {
		return err
	}
	if o.serve {
		// The daemon runs an open-ended fabric: batch-run shaping flags
		// and the finite-horizon fault plan contradict it, and the control
		// API already serves the metrics endpoints.
		for _, f := range []string{"conns", "cycles", "warmup", "rate", "vbr", "be",
			"fault-links", "fault-mtbf", "fault-mttr", "fault-drop", "fault-downtime",
			"metrics-addr", "metrics-interval"} {
			if set[f] {
				return fmt.Errorf("-%s is a batch-run flag and contradicts -serve", f)
			}
		}
		if o.restore && o.checkpoint == "" {
			return fmt.Errorf("-restore needs -checkpoint to name the snapshot to resume from")
		}
		if o.checkpointInterval > 0 && o.checkpoint == "" {
			return fmt.Errorf("-checkpoint-interval needs -checkpoint to name the snapshot path")
		}
		if o.pace < 0 {
			return fmt.Errorf("-pace must be non-negative, got %v", o.pace)
		}
	} else {
		for _, f := range []string{"serve-addr", "checkpoint", "checkpoint-interval", "restore", "pace"} {
			if set[f] {
				return fmt.Errorf("-%s only applies in daemon mode; add -serve", f)
			}
		}
	}
	return nil
}

func main() {
	o := defaultOpts()
	flag.StringVar(&o.topo, "topo", o.topo, "topology: mesh, torus, irregular, fattree, dragonfly")
	flag.IntVar(&o.w, "w", o.w, "mesh/torus width")
	flag.IntVar(&o.h, "h", o.h, "mesh/torus height")
	flag.IntVar(&o.nodes, "nodes", o.nodes, "irregular topology node count")
	flag.IntVar(&o.degree, "degree", o.degree, "irregular topology average degree")
	flag.IntVar(&o.ftK, "ft-k", o.ftK, "fat-tree arity k (even: k pods of k routers plus (k/2)² core routers)")
	flag.IntVar(&o.dfA, "df-a", o.dfA, "dragonfly routers per group")
	flag.IntVar(&o.dfP, "df-p", o.dfP, "dragonfly host-facing ports per router (shape bookkeeping)")
	flag.IntVar(&o.dfH, "df-h", o.dfH, "dragonfly global links per router")
	flag.StringVar(&o.route, "route", o.route, "establishment routing: minimal (EPB search), valiant, ugal")
	flag.IntVar(&o.ports, "ports", o.ports, "inter-router ports per router")
	flag.IntVar(&o.conns, "conns", o.conns, "connections to open at random endpoints")
	flag.Float64Var(&o.rate, "rate", o.rate, "connection rate in Mbps (0 = draw from the paper's rate set)")
	flag.Float64Var(&o.vbr, "vbr", o.vbr, "fraction of connections that are VBR (peak 3×)")
	flag.Float64Var(&o.be, "be", o.be, "best-effort packets/cycle per node pair (adds 2×nodes flows)")
	flag.Int64Var(&o.cycles, "cycles", o.cycles, "measured cycles after warmup")
	flag.Int64Var(&o.warmup, "warmup", o.warmup, "warmup cycles")
	flag.IntVar(&o.vcs, "vcs", o.vcs, "virtual channels per input port")
	flag.Uint64Var(&o.seed, "seed", o.seed, "simulation seed")
	flag.IntVar(&o.netWorkers, "net-workers", o.netWorkers,
		"worker goroutines stepping the network (1 = serial; results are identical at any setting)")
	flag.IntVar(&o.netShards, "shards", o.netShards,
		"topology shards for the shard-resident executor (0 = one per worker; results are identical at any setting)")
	flag.BoolVar(&o.noIdleSkip, "no-idle-skip", o.noIdleSkip,
		"disable activity gating and idle-cycle elision (results are identical either way)")
	flag.IntVar(&o.faultLinks, "fault-links", o.faultLinks, "random link failures to inject during the measured run")
	flag.Int64Var(&o.faultDowntime, "fault-downtime", o.faultDowntime, "cycles a -fault-links failure lasts (0 = permanent)")
	flag.Float64Var(&o.faultMTBF, "fault-mtbf", o.faultMTBF, "mean cycles between stochastic failures per link (0 = off)")
	flag.Float64Var(&o.faultMTTR, "fault-mttr", o.faultMTTR, "mean repair time for stochastic failures")
	flag.Float64Var(&o.faultDrop, "fault-drop", o.faultDrop, "per-flit drop probability on every link")
	flag.Uint64Var(&o.faultSeed, "fault-seed", o.faultSeed, "fault plan seed (0 = derive from -seed)")
	flag.BoolVar(&o.noRestore, "no-restore", o.noRestore, "disable re-establishment of fault-broken connections")
	flag.BoolVar(&o.noDegrade, "no-degrade", o.noDegrade, "disable best-effort fallback for unrestorable connections")
	flag.StringVar(&o.metricsAddr, "metrics-addr", o.metricsAddr,
		"serve /metrics, /metrics.json, /flight and /debug/pprof on this address (e.g. :9090; empty = off)")
	flag.Int64Var(&o.metricsInterval, "metrics-interval", o.metricsInterval,
		"print a progress summary to stderr every N measured cycles (0 = off)")
	flag.BoolVar(&o.flightDump, "flight-dump", o.flightDump,
		"dump the per-router flight recorders to stderr on every fault transition")
	flag.BoolVar(&o.serve, "serve", o.serve,
		"run as a long-lived daemon behind an HTTP control API instead of a batch simulation")
	flag.StringVar(&o.serveAddr, "serve-addr", o.serveAddr, "daemon control API listen address")
	flag.StringVar(&o.checkpoint, "checkpoint", o.checkpoint,
		"daemon snapshot path: written every -checkpoint-interval cycles and on graceful shutdown")
	flag.Int64Var(&o.checkpointInterval, "checkpoint-interval", o.checkpointInterval,
		"cycles between periodic daemon snapshots (0 = only the final one)")
	flag.BoolVar(&o.restore, "restore", o.restore,
		"resume the daemon's fabric from the -checkpoint snapshot at startup")
	flag.DurationVar(&o.pace, "pace", o.pace,
		"daemon wall-clock duration of one flit cycle (103ns matches the router's real rate; 0 = free-run)")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateOpts(o, set); err != nil {
		fmt.Fprintln(os.Stderr, "mmrnet:", err)
		os.Exit(2)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	o.sigc = sigc

	var err error
	if o.serve {
		err = runDaemon(o, os.Stdout, os.Stderr, o.sigc)
	} else {
		err = run(o, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmrnet:", err)
		os.Exit(1)
	}
}

func run(o simOpts, out, diag io.Writer) error {
	rng := sim.NewRNG(o.seed)
	tp, err := buildTopology(o, rng)
	if err != nil {
		return err
	}
	n, err := network.New(buildConfig(o, tp))
	if err != nil {
		return err
	}
	defer n.Shutdown()
	if o.flightDump {
		n.SetFlightSink(diag)
	}

	// Fault plan: scheduled random link failures land inside the measured
	// window; stochastic churn and impairments cover the whole run.
	fseed := o.faultSeed
	if fseed == 0 {
		fseed = o.seed ^ 0xfa017
	}
	plan := faults.NewPlan(fseed)
	horizon := o.warmup + o.cycles
	if o.faultLinks > 0 {
		window := o.cycles / 2
		if window < 1 {
			window = 1
		}
		plan.RandomLinkFailures(tp, o.faultLinks, o.warmup+o.cycles/10, window, o.faultDowntime)
	}
	if o.faultMTBF > 0 {
		plan.WithMTBF(o.faultMTBF, o.faultMTTR)
	}
	if o.faultDrop > 0 {
		for _, l := range tp.Links {
			plan.Impair(l.A, l.APort, o.faultDrop, 0)
			plan.Impair(l.B, l.BPort, o.faultDrop, 0)
		}
	}
	injectFaults := len(plan.Events) > 0 || len(plan.Impairments) > 0 || plan.MTBF > 0
	if injectFaults {
		if err := n.ApplyPlan(plan, horizon); err != nil {
			return err
		}
	}

	opened, backtracks := 0, 0
	for i := 0; i < o.conns; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			dst = (dst + 1) % tp.Nodes
		}
		spec := traffic.ConnSpec{Class: flit.ClassCBR}
		if o.rate > 0 {
			spec.Rate = traffic.Rate(o.rate) * traffic.Mbps
		} else {
			spec.Rate = traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		}
		if o.vbr > 0 && rng.Float64() < o.vbr {
			spec.Class = flit.ClassVBR
			spec.PeakRate = traffic.Rate(3 * float64(spec.Rate))
			spec.Priority = rng.Intn(4)
		}
		c, err := n.Open(src, dst, spec)
		if err == nil {
			opened++
			backtracks += c.Backtracks
		}
	}
	if o.be > 0 {
		added := 0
		for i := 0; i < 2*tp.Nodes; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			if src == dst {
				continue
			}
			if _, err := n.AddBestEffortFlow(src, dst, o.be); err == nil {
				added++
			}
		}
		fmt.Fprintf(out, "best-effort flows: %d at %.3f packets/cycle each\n", added, o.be)
	}

	// Optional live endpoint: the run loop below publishes snapshots
	// between chunks; handlers never touch live registry shards.
	var srv *metrics.Server
	if o.metricsAddr != "" {
		srv = metrics.NewServer()
		if err := srv.Serve(o.metricsAddr); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(diag, "mmrnet: serving /metrics and /debug/pprof on http://%s\n", srv.Addr())
	}
	publish := func() {
		if srv == nil {
			return
		}
		srv.Publish(n.GatherMetrics())
		var b strings.Builder
		n.DumpFlight(&b)
		srv.PublishFlight(b.String())
	}

	interrupted := runChunked(n, o.warmup, o, srv, publish, nil)
	if !interrupted {
		n.ResetStats()
		progress := func(done int64) {
			st := n.Stats()
			fmt.Fprintf(diag, "mmrnet: cycle %d/%d delivered=%d latency=%.2f jitter=%.3f broken=%d\n",
				done, o.cycles, st.FlitsDelivered, st.Latency.Mean(), st.Jitter.Mean(), st.ConnsBroken)
		}
		if o.metricsInterval <= 0 {
			progress = nil
		}
		interrupted = runChunked(n, o.cycles, o, srv, publish, progress)
	}
	if interrupted {
		// Even a cut-short batch run leaves its evidence behind: the
		// flight recorders and the partial report below.
		fmt.Fprintf(diag, "mmrnet: interrupted at cycle %d — flushing flight recorders, printing the partial report\n", n.Now())
		n.DumpFlight(diag)
	}
	st := n.Stats()
	publish()

	fmt.Fprintf(out, "topology    %s: %d routers, %d links, host port = port %d\n",
		o.topo, tp.Nodes, len(tp.Links), tp.Ports)
	fmt.Fprintf(out, "setup       %d/%d connections accepted (%.1f%%), %d probe backtracks, mean setup %.1f cycles\n",
		opened, o.conns, 100*float64(opened)/float64(o.conns), backtracks, st.SetupLatency.Mean())
	fmt.Fprintf(out, "delivered   %d stream flits over %d cycles\n", st.FlitsDelivered, st.Cycles)
	fmt.Fprintf(out, "latency     %.2f cycles end-to-end (min %s, max %s)\n",
		st.Latency.Mean(),
		stats.FormatAccumCell(&st.Latency, "min", "%.0f"),
		stats.FormatAccumCell(&st.Latency, "max", "%.0f"))
	fmt.Fprintf(out, "jitter      %.3f cycles\n", st.Jitter.Mean())
	if st.BEGenerated > 0 {
		fmt.Fprintf(out, "best-effort %d/%d packets delivered, latency %.2f cycles\n",
			st.BEDelivered, st.BEGenerated, st.BELatency.Mean())
	}
	if injectFaults {
		fmt.Fprintf(out, "faults      %d link failures injected, %d repaired, %d flits lost, %d dropped on impaired links\n",
			st.FaultsInjected, st.FaultsRepaired, st.FaultFlitsLost, st.FlitsDropped)
		fmt.Fprintf(out, "healing     %d conns broken, %d restored (mean %s cycles, max %s), %d degraded, %d promoted, %d lost, %d setup retries\n",
			st.ConnsBroken, st.ConnsRestored,
			stats.FormatAccumCell(&st.RestoreLatency, "mean", "%.0f"),
			stats.FormatAccumCell(&st.RestoreLatency, "max", "%.0f"),
			st.ConnsDegraded, st.ConnsPromoted, st.ConnsLost, st.SetupRetries)
		for _, ev := range n.SessionEvents() {
			if ev.Kind == "conn-degraded" || ev.Kind == "conn-promoted" || ev.Kind == "conn-lost" {
				fmt.Fprintf(out, "  cycle %-8d %s conn %d: %s\n", ev.Cycle, ev.Kind, ev.Conn, ev.Detail)
			}
		}
	}
	if o.afterRun != nil {
		addr := ""
		if srv != nil {
			addr = srv.Addr()
		}
		o.afterRun(addr, n)
	}
	return nil
}

// runChunked advances the simulation `total` cycles and reports whether
// it was cut short by a signal. With a metrics server, interval
// reporting or a signal channel active it steps in chunks so snapshots
// stay fresh and interrupts land promptly; otherwise it is one Run call.
func runChunked(n *network.Network, total int64, o simOpts, srv *metrics.Server, publish func(), progress func(done int64)) bool {
	if total <= 0 {
		return false
	}
	step := o.metricsInterval
	if step <= 0 {
		if srv == nil && o.sigc == nil {
			n.Run(total)
			return false
		}
		step = 5000
	}
	for done := int64(0); done < total; {
		c := step
		if rem := total - done; c > rem {
			c = rem
		}
		n.Run(c)
		done += c
		publish()
		if progress != nil {
			progress(done)
		}
		if o.sigc != nil {
			select {
			case <-o.sigc:
				return true
			default:
			}
		}
	}
	return false
}
