// Command mmrnet simulates a multi-router MMR fabric: it builds a
// topology, opens randomly placed connections with EPB establishment,
// optionally adds best-effort traffic, runs the flit-level datapath and
// prints end-to-end statistics.
//
// Examples:
//
//	mmrnet -topo mesh -w 4 -h 4 -conns 64
//	mmrnet -topo irregular -nodes 16 -degree 3 -conns 100 -be 0.01
//	mmrnet -topo torus -w 4 -h 4 -conns 80 -rate 55
//
// Fault injection (see docs/faults.md):
//
//	mmrnet -topo irregular -conns 64 -fault-links 3 -fault-downtime 5000
//	mmrnet -topo mesh -conns 48 -fault-mtbf 20000 -fault-mttr 2000
//	mmrnet -topo mesh -conns 48 -fault-links 2 -no-restore -fault-drop 0.001
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mmr/internal/faults"
	"mmr/internal/flit"
	"mmr/internal/network"
	"mmr/internal/sim"
	"mmr/internal/topology"
	"mmr/internal/traffic"
)

func main() {
	var (
		topo       = flag.String("topo", "mesh", "topology: mesh, torus, irregular")
		w          = flag.Int("w", 4, "mesh/torus width")
		h          = flag.Int("h", 4, "mesh/torus height")
		nodes      = flag.Int("nodes", 16, "irregular topology node count")
		degree     = flag.Int("degree", 3, "irregular topology average degree")
		ports      = flag.Int("ports", 4, "inter-router ports per router")
		conns      = flag.Int("conns", 48, "connections to open at random endpoints")
		rate       = flag.Float64("rate", 0, "connection rate in Mbps (0 = draw from the paper's rate set)")
		vbr        = flag.Float64("vbr", 0, "fraction of connections that are VBR (peak 3×)")
		be         = flag.Float64("be", 0, "best-effort packets/cycle per node pair (adds 2×nodes flows)")
		cycles     = flag.Int64("cycles", 50_000, "measured cycles after warmup")
		warmup     = flag.Int64("warmup", 10_000, "warmup cycles")
		vcs        = flag.Int("vcs", 64, "virtual channels per input port")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		netWorkers = flag.Int("net-workers", runtime.GOMAXPROCS(0),
			"worker goroutines stepping the network (1 = serial; results are identical at any setting)")

		faultLinks    = flag.Int("fault-links", 0, "random link failures to inject during the measured run")
		faultDowntime = flag.Int64("fault-downtime", 5000, "cycles a -fault-links failure lasts (0 = permanent)")
		faultMTBF     = flag.Float64("fault-mtbf", 0, "mean cycles between stochastic failures per link (0 = off)")
		faultMTTR     = flag.Float64("fault-mttr", 1000, "mean repair time for stochastic failures")
		faultDrop     = flag.Float64("fault-drop", 0, "per-flit drop probability on every link")
		faultSeed     = flag.Uint64("fault-seed", 0, "fault plan seed (0 = derive from -seed)")
		noRestore     = flag.Bool("no-restore", false, "disable re-establishment of fault-broken connections")
		noDegrade     = flag.Bool("no-degrade", false, "disable best-effort fallback for unrestorable connections")
	)
	flag.Parse()

	rng := sim.NewRNG(*seed)
	var tp *topology.Topology
	var err error
	switch *topo {
	case "mesh":
		tp, err = topology.Mesh(*w, *h, *ports)
	case "torus":
		tp, err = topology.Torus(*w, *h, *ports)
	case "irregular":
		tp, err = topology.Irregular(*nodes, *ports, *degree, rng)
	default:
		err = fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		fail(err)
	}

	cfg := network.DefaultConfig(tp)
	cfg.VCs = *vcs
	cfg.Seed = *seed
	cfg.Workers = *netWorkers
	cfg.Fault.Restore = !*noRestore
	cfg.Fault.Degrade = !*noDegrade
	n, err := network.New(cfg)
	if err != nil {
		fail(err)
	}
	defer n.Shutdown()

	// Fault plan: scheduled random link failures land inside the measured
	// window; stochastic churn and impairments cover the whole run.
	fseed := *faultSeed
	if fseed == 0 {
		fseed = *seed ^ 0xfa017
	}
	plan := faults.NewPlan(fseed)
	horizon := *warmup + *cycles
	if *faultLinks > 0 {
		window := *cycles / 2
		if window < 1 {
			window = 1
		}
		plan.RandomLinkFailures(tp, *faultLinks, *warmup+*cycles/10, window, *faultDowntime)
	}
	if *faultMTBF > 0 {
		plan.WithMTBF(*faultMTBF, *faultMTTR)
	}
	if *faultDrop > 0 {
		for _, l := range tp.Links {
			plan.Impair(l.A, l.APort, *faultDrop, 0)
			plan.Impair(l.B, l.BPort, *faultDrop, 0)
		}
	}
	injectFaults := len(plan.Events) > 0 || len(plan.Impairments) > 0 || plan.MTBF > 0
	if injectFaults {
		if err := n.ApplyPlan(plan, horizon); err != nil {
			fail(err)
		}
	}

	opened, backtracks := 0, 0
	for i := 0; i < *conns; i++ {
		src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
		if src == dst {
			dst = (dst + 1) % tp.Nodes
		}
		spec := traffic.ConnSpec{Class: flit.ClassCBR}
		if *rate > 0 {
			spec.Rate = traffic.Rate(*rate) * traffic.Mbps
		} else {
			spec.Rate = traffic.PaperRates[rng.Intn(len(traffic.PaperRates))]
		}
		if *vbr > 0 && rng.Float64() < *vbr {
			spec.Class = flit.ClassVBR
			spec.PeakRate = traffic.Rate(3 * float64(spec.Rate))
			spec.Priority = rng.Intn(4)
		}
		c, err := n.Open(src, dst, spec)
		if err == nil {
			opened++
			backtracks += c.Backtracks
		}
	}
	if *be > 0 {
		added := 0
		for i := 0; i < 2*tp.Nodes; i++ {
			src, dst := rng.Intn(tp.Nodes), rng.Intn(tp.Nodes)
			if src == dst {
				continue
			}
			if err := n.AddBestEffortFlow(src, dst, *be); err == nil {
				added++
			}
		}
		fmt.Printf("best-effort flows: %d at %.3f packets/cycle each\n", added, *be)
	}

	n.Run(*warmup)
	n.ResetStats()
	n.Run(*cycles)
	st := n.Stats()

	fmt.Printf("topology    %s: %d routers, %d links, host port = port %d\n",
		*topo, tp.Nodes, len(tp.Links), tp.Ports)
	fmt.Printf("setup       %d/%d connections accepted (%.1f%%), %d probe backtracks, mean setup %.1f cycles\n",
		opened, *conns, 100*float64(opened)/float64(*conns), backtracks, st.SetupLatency.Mean())
	fmt.Printf("delivered   %d stream flits over %d cycles\n", st.FlitsDelivered, st.Cycles)
	fmt.Printf("latency     %.2f cycles end-to-end (min %.0f, max %.0f)\n",
		st.Latency.Mean(), st.Latency.Min(), st.Latency.Max())
	fmt.Printf("jitter      %.3f cycles\n", st.Jitter.Mean())
	if st.BEGenerated > 0 {
		fmt.Printf("best-effort %d/%d packets delivered, latency %.2f cycles\n",
			st.BEDelivered, st.BEGenerated, st.BELatency.Mean())
	}
	if injectFaults {
		fmt.Printf("faults      %d link failures injected, %d repaired, %d flits lost, %d dropped on impaired links\n",
			st.FaultsInjected, st.FaultsRepaired, st.FaultFlitsLost, st.FlitsDropped)
		fmt.Printf("healing     %d conns broken, %d restored (mean %.0f cycles, max %.0f), %d degraded, %d lost, %d setup retries\n",
			st.ConnsBroken, st.ConnsRestored, st.RestoreLatency.Mean(), st.RestoreLatency.Max(),
			st.ConnsDegraded, st.ConnsLost, st.SetupRetries)
		for _, ev := range n.SessionEvents() {
			if ev.Kind == "conn-degraded" || ev.Kind == "conn-lost" {
				fmt.Printf("  cycle %-8d %s conn %d: %s\n", ev.Cycle, ev.Kind, ev.Conn, ev.Detail)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmrnet:", err)
	os.Exit(1)
}
