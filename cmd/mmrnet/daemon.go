// Daemon mode: -serve turns mmrnet from a batch simulator into a
// long-lived fabric process. A single goroutine owns the network and
// alternates between draining a bounded control queue and advancing the
// simulation clock; HTTP handlers never touch the fabric directly, they
// submit closures over the queue and wait on a buffered reply channel
// with a timeout.
//
// Robustness behavior (see docs/operations.md):
//
//   - Admission failures on /api/open go through OpenWithRetry's
//     journaled backoff; when the budget is exhausted the request is
//     degraded to a best-effort flow before being refused outright.
//   - When the control queue runs deep, new guaranteed-bandwidth
//     requests are shed straight to best-effort; when it is full the
//     handler answers 503 without blocking the fabric.
//   - With -checkpoint the daemon writes an atomic snapshot every
//     -checkpoint-interval cycles, and -restore resumes a fabric from
//     the last snapshot, bit-identical to the process that wrote it.
//   - Requests may name a tenant; /api/tenant installs per-tenant
//     admission quotas that establishment, shedding and re-promotion
//     all settle against.
//   - With -pace the clock advances in lock-step with wall time (one
//     flit cycle per -pace of real time; 103ns matches §5's router),
//     instead of free-running a slice per tick.
//   - SIGTERM/SIGINT drain gracefully: the listener closes, queued
//     control work completes, pending open retries get a grace window,
//     and a final checkpoint plus flight-recorder flush land on disk
//     before the process exits 0.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"mmr/internal/admission"
	"mmr/internal/flit"
	"mmr/internal/metrics"
	"mmr/internal/network"
	"mmr/internal/sim"
	"mmr/internal/traffic"
)

const (
	// daemonSlice is how many cycles the fabric advances per control-loop
	// iteration: small enough that a queued request waits at most a few
	// hundred cycles, large enough that the loop is not all overhead.
	daemonSlice = 512
	// daemonPace bounds how fast the clock free-runs while the control
	// queue is empty (one slice per tick; requests wake the loop sooner).
	daemonPace = time.Millisecond
	// ctlQueueDepth bounds the control queue. At half depth new open
	// requests are shed to best-effort; at full depth they are refused.
	ctlQueueDepth = 256
	// apiTimeout bounds how long a handler waits for the fabric to answer
	// before giving up with 504.
	apiTimeout = 10 * time.Second
	// drainGrace is the cycle budget a graceful shutdown runs after the
	// listener closes, so journaled open retries resolve before the final
	// checkpoint. Unresolved ones survive in the checkpoint's journal.
	drainGrace = 4096
	// publishEvery throttles metrics snapshots to one per this many
	// control-loop iterations.
	publishEvery = 16
	// quiesceBudget bounds how many cycles a snapshot may run the fabric
	// forward to let in-flight establishment probes settle. Checkpoints
	// refuse to encode mid-probe state (probes are not durable), so a
	// snapshot requested during a connection bring-up drains it first.
	quiesceBudget = 1 << 16
	// paceBurst caps how many cycles a paced loop iteration may advance
	// at once to catch up with wall time (after a stall or a large
	// -pace deficit), so control requests never wait behind an unbounded
	// catch-up run.
	paceBurst = 1 << 16
)

// ctlResp is a control request's answer: a JSON-marshalable value or an
// error classified by the handler into an HTTP status.
type ctlResp struct {
	v   any
	err error
}

type daemon struct {
	o         simOpts
	out, diag io.Writer

	ctl     chan func(n *network.Network)
	msrv    *metrics.Server
	httpSrv *http.Server

	// Loop-goroutine state (handlers read it only via ctl closures) —
	// except shedCount, which handler goroutines bump concurrently.
	lastCkpt  int64
	pubCount  int
	shedCount atomic.Int64
}

// runDaemon builds (or restores) the fabric and serves the control API
// until a signal arrives on sigc. It returns nil on a clean drain.
func runDaemon(o simOpts, out, diag io.Writer, sigc <-chan os.Signal) error {
	tp, err := buildTopology(o, sim.NewRNG(o.seed))
	if err != nil {
		return err
	}
	cfg := buildConfig(o, tp)
	var n *network.Network
	restored := ""
	if o.restore {
		if n, err = network.RestoreCheckpoint(cfg, o.checkpoint); err != nil {
			return fmt.Errorf("restore %s: %w", o.checkpoint, err)
		}
		restored = ", restored from checkpoint"
	} else if n, err = network.New(cfg); err != nil {
		return err
	}
	defer n.Shutdown()
	if o.flightDump {
		n.SetFlightSink(diag)
	}

	d := &daemon{
		o: o, out: out, diag: diag,
		ctl:      make(chan func(*network.Network), ctlQueueDepth),
		msrv:     metrics.NewServer(),
		lastCkpt: n.Now(),
	}
	ln, err := net.Listen("tcp", o.serveAddr)
	if err != nil {
		return err
	}
	d.httpSrv = &http.Server{Handler: d.handler(), ReadHeaderTimeout: 5 * time.Second}
	go d.httpSrv.Serve(ln)
	defer d.httpSrv.Close()
	fmt.Fprintf(diag, "mmrnet: daemon serving the control API on http://%s (fabric at cycle %d%s)\n",
		ln.Addr(), n.Now(), restored)
	if o.afterServe != nil {
		o.afterServe(ln.Addr().String())
	}

	// With -pace the clock is slaved to wall time: cycle targets are
	// computed from the loop's start instant (not incrementally), so
	// rounding never accumulates drift. Free-running mode advances one
	// slice per iteration as before.
	pace := time.NewTicker(daemonPace)
	defer pace.Stop()
	start, startCycle := time.Now(), n.Now()
	for {
		select {
		case sig := <-sigc:
			return d.drainAndExit(n, sig)
		case fn := <-d.ctl:
			fn(n)
			d.drainCtl(n)
		case <-pace.C:
		}
		if o.pace > 0 {
			target := startCycle + int64(time.Since(start)/o.pace)
			if deficit := target - n.Now(); deficit > 0 {
				if deficit > paceBurst {
					deficit = paceBurst
				}
				n.Run(deficit)
			}
		} else {
			n.Run(daemonSlice)
		}
		d.maybeCheckpoint(n)
		if d.pubCount++; d.pubCount%publishEvery == 0 {
			d.msrv.Publish(n.GatherMetrics())
		}
	}
}

// drainCtl runs every queued control request without advancing the clock
// between them, so a burst is answered against one consistent cycle.
func (d *daemon) drainCtl(n *network.Network) {
	for {
		select {
		case fn := <-d.ctl:
			fn(n)
		default:
			return
		}
	}
}

// drainAndExit is the graceful-shutdown path: refuse new work, settle
// what is in flight, persist a final checkpoint, flush the flight
// recorders and report.
func (d *daemon) drainAndExit(n *network.Network, sig os.Signal) error {
	fmt.Fprintf(d.diag, "mmrnet: %v — draining: closing the listener and settling pending work\n", sig)
	d.httpSrv.Close()
	d.drainCtl(n)
	// A grace window lets journaled open retries resolve; any that do
	// not are carried by the checkpoint's durable journal instead.
	n.Run(drainGrace)
	d.drainCtl(n)
	if d.o.checkpoint != "" {
		if err := n.QuiesceProbes(quiesceBudget); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		if err := n.SaveCheckpoint(d.o.checkpoint); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Fprintf(d.diag, "mmrnet: final checkpoint at cycle %d -> %s\n", n.Now(), d.o.checkpoint)
	}
	n.DumpFlight(d.diag)
	st := n.Stats()
	open := 0
	for _, c := range n.Conns() {
		if c.Open() {
			open++
		}
	}
	fmt.Fprintf(d.out, "daemon      drained at cycle %d: %d connections still open, %d setup attempts (%d accepted, %d rejected, %d retries), %d closed, %d shed\n",
		n.Now(), open, st.SetupAttempts, st.SetupAccepted, st.SetupRejected, st.SetupRetries, st.Closed, d.shedCount.Load())
	fmt.Fprintf(d.out, "delivered   %d stream flits, %d/%d best-effort packets\n",
		st.FlitsDelivered, st.BEDelivered, st.BEGenerated)
	return nil
}

// maybeCheckpoint writes a periodic snapshot when one is due.
func (d *daemon) maybeCheckpoint(n *network.Network) {
	if d.o.checkpoint == "" || d.o.checkpointInterval <= 0 || n.Now()-d.lastCkpt < d.o.checkpointInterval {
		return
	}
	// Advance the stamp even on failure so a persistent error (disk
	// full, unwritable path) logs once per interval, not once per slice.
	d.lastCkpt = n.Now()
	if err := n.QuiesceProbes(quiesceBudget); err != nil {
		fmt.Fprintf(d.diag, "mmrnet: checkpoint at cycle %d skipped: %v\n", n.Now(), err)
		return
	}
	if err := n.SaveCheckpoint(d.o.checkpoint); err != nil {
		fmt.Fprintf(d.diag, "mmrnet: checkpoint at cycle %d failed: %v\n", n.Now(), err)
	}
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/open", d.handleOpen)
	mux.HandleFunc("/api/close", d.handleClose)
	mux.HandleFunc("/api/modify", d.handleModify)
	mux.HandleFunc("/api/query", d.handleQuery)
	mux.HandleFunc("/api/conns", d.handleConns)
	mux.HandleFunc("/api/tenant", d.handleTenant)
	mux.HandleFunc("/api/tenants", d.handleTenants)
	mux.HandleFunc("/api/status", d.handleStatus)
	mux.Handle("/", d.msrv.Handler()) // /metrics, /metrics.json, /flight, /debug/pprof
	return mux
}

// submit queues a control request, or sheds it when the queue is full.
func (d *daemon) submit(w http.ResponseWriter, job func(n *network.Network)) bool {
	select {
	case d.ctl <- job:
		return true
	default:
		d.shedCount.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "control queue full, retry later", http.StatusServiceUnavailable)
		return false
	}
}

// await blocks until the fabric answers, the client goes away, or the
// request times out. The reply channel is buffered so the fabric side
// never blocks on an abandoned request.
func (d *daemon) await(w http.ResponseWriter, r *http.Request, reply <-chan ctlResp) (ctlResp, bool) {
	select {
	case resp := <-reply:
		return resp, true
	case <-r.Context().Done():
		return ctlResp{}, false
	case <-time.After(apiTimeout):
		http.Error(w, "fabric did not answer within the request timeout", http.StatusGatewayTimeout)
		return ctlResp{}, false
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func findConn(n *network.Network, id int) *network.Conn {
	for _, c := range n.Conns() {
		if int(c.ID) == id {
			return c
		}
	}
	return nil
}

type openRequest struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Class    string  `json:"class"` // "cbr" (default) or "vbr"
	RateMbps float64 `json:"rate_mbps"`
	PeakMbps float64 `json:"peak_mbps"` // VBR only; 0 = 3× rate
	Priority int     `json:"priority"`  // VBR only
	NoRetry  bool    `json:"no_retry"`  // refuse immediately instead of backoff + degrade
	// Tenant names the admission-quota owner of the session ("" = the
	// unlimited default tenant; see /api/tenant).
	Tenant string `json:"tenant,omitempty"`
}

type openResponse struct {
	Conn     int  `json:"conn"` // -1 when degraded to best-effort
	Degraded bool `json:"degraded"`
	// Flow is the owner handle of the best-effort fallback flow when the
	// request was shed or degraded (0 otherwise). Pass it back as
	// closeRequest.Flow to retire the flow — without the handle a shed
	// request's generator would run until process exit.
	Flow        int64 `json:"flow,omitempty"`
	Nodes       []int `json:"nodes,omitempty"`
	SetupCycles int64 `json:"setup_cycles"`
	Cycle       int64 `json:"cycle"`
}

func (d *daemon) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req openRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	spec := traffic.ConnSpec{Class: flit.ClassCBR, Rate: traffic.Rate(req.RateMbps) * traffic.Mbps}
	switch req.Class {
	case "", "cbr":
	case "vbr":
		spec.Class = flit.ClassVBR
		spec.PeakRate = traffic.Rate(req.PeakMbps) * traffic.Mbps
		if spec.PeakRate <= 0 {
			spec.PeakRate = 3 * spec.Rate
		}
		spec.Priority = req.Priority
	default:
		http.Error(w, "class must be cbr or vbr", http.StatusBadRequest)
		return
	}
	if spec.Rate <= 0 {
		http.Error(w, "rate_mbps must be positive", http.StatusBadRequest)
		return
	}
	// Overload shedding: a deep queue means the fabric cannot keep up
	// with admission work, so degrade new requests to best-effort
	// directly rather than queueing a full establishment search.
	shedToBE := len(d.ctl) >= ctlQueueDepth/2 && !req.NoRetry
	reply := make(chan ctlResp, 1)
	job := func(n *network.Network) {
		// One best-effort flit per packet (§3.4), so packets/cycle at the
		// requested rate is exactly the link's flits/cycle at that rate —
		// capped at one per cycle so a degraded request can never flood
		// the fabric harder than a saturated link.
		pkts := n.Config().Link.FlitsPerCycle(spec.Rate)
		if pkts > 1 {
			pkts = 1
		}
		degrade := func(cause error) {
			// The fallback flow is uncharged best-effort service, but a
			// tenant at its session ceiling gets the refusal, not free
			// capacity under a different guise.
			if !n.Tenants().CanAdmit(req.Tenant, 0) {
				reply <- ctlResp{err: fmt.Errorf("tenant %q over admission quota: %v", req.Tenant, cause)}
				return
			}
			id, err := n.AddBestEffortFlow(req.Src, req.Dst, pkts)
			if err != nil {
				reply <- ctlResp{err: cause}
				return
			}
			reply <- ctlResp{v: openResponse{Conn: -1, Degraded: true, Flow: int64(id), Cycle: n.Now()}}
		}
		if shedToBE {
			degrade(fmt.Errorf("fabric overloaded"))
			return
		}
		finish := func(c *network.Conn, err error) {
			if err != nil {
				if req.NoRetry {
					reply <- ctlResp{err: err}
				} else {
					degrade(err)
				}
				return
			}
			reply <- ctlResp{v: openResponse{Conn: int(c.ID), Nodes: c.Nodes, SetupCycles: c.SetupTime, Cycle: n.Now()}}
		}
		if req.NoRetry {
			finish(n.OpenAs(req.Tenant, req.Src, req.Dst, spec))
			return
		}
		if err := n.OpenWithRetryAs(req.Tenant, req.Src, req.Dst, spec, finish); err != nil {
			reply <- ctlResp{err: err} // endpoint validation failed; finish will not fire
		}
	}
	if !d.submit(w, job) {
		return
	}
	resp, ok := d.await(w, r, reply)
	if !ok {
		return
	}
	if resp.err != nil {
		http.Error(w, resp.err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, resp.v)
}

type closeRequest struct {
	Conn  int   `json:"conn"`
	Limit int64 `json:"limit"` // drain cycle budget; 0 = 10000
	// Flow, when nonzero, closes the standalone best-effort flow with
	// that owner handle (from openResponse.Flow) instead of a connection.
	Flow int64 `json:"flow,omitempty"`
}

func (d *daemon) handleClose(w http.ResponseWriter, r *http.Request) {
	var req closeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = 10_000
	}
	reply := make(chan ctlResp, 1)
	notFound := false
	if !d.submit(w, func(n *network.Network) {
		if req.Flow != 0 {
			if err := n.CloseFlow(network.FlowID(req.Flow)); err != nil {
				notFound = true
				reply <- ctlResp{err: err}
				return
			}
			reply <- ctlResp{v: map[string]any{"flow": req.Flow, "cycle": n.Now()}}
			return
		}
		c := findConn(n, req.Conn)
		if c == nil {
			notFound = true
			reply <- ctlResp{err: fmt.Errorf("unknown connection %d", req.Conn)}
			return
		}
		if err := n.DrainAndClose(c, limit); err != nil {
			reply <- ctlResp{err: err}
			return
		}
		reply <- ctlResp{v: map[string]any{"conn": req.Conn, "cycle": n.Now()}}
	}) {
		return
	}
	resp, ok := d.await(w, r, reply)
	if !ok {
		return
	}
	if resp.err != nil {
		code := http.StatusConflict
		if notFound {
			code = http.StatusNotFound
		}
		http.Error(w, resp.err.Error(), code)
		return
	}
	writeJSON(w, resp.v)
}

type modifyRequest struct {
	Conn     int     `json:"conn"`
	RateMbps float64 `json:"rate_mbps"`
}

func (d *daemon) handleModify(w http.ResponseWriter, r *http.Request) {
	var req modifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	reply := make(chan ctlResp, 1)
	notFound := false
	if !d.submit(w, func(n *network.Network) {
		c := findConn(n, req.Conn)
		if c == nil {
			notFound = true
			reply <- ctlResp{err: fmt.Errorf("unknown connection %d", req.Conn)}
			return
		}
		if err := n.ModifyBandwidth(c, traffic.Rate(req.RateMbps)*traffic.Mbps); err != nil {
			reply <- ctlResp{err: err}
			return
		}
		reply <- ctlResp{v: map[string]any{"conn": req.Conn, "rate_mbps": req.RateMbps, "cycle": n.Now()}}
	}) {
		return
	}
	resp, ok := d.await(w, r, reply)
	if !ok {
		return
	}
	if resp.err != nil {
		code := http.StatusConflict
		if notFound {
			code = http.StatusNotFound
		}
		http.Error(w, resp.err.Error(), code)
		return
	}
	writeJSON(w, resp.v)
}

func (d *daemon) handleQuery(w http.ResponseWriter, r *http.Request) {
	node, err1 := strconv.Atoi(r.URL.Query().Get("node"))
	port, err2 := strconv.Atoi(r.URL.Query().Get("port"))
	if err1 != nil || err2 != nil {
		http.Error(w, "query needs integer node= and port= parameters", http.StatusBadRequest)
		return
	}
	reply := make(chan ctlResp, 1)
	if !d.submit(w, func(n *network.Network) {
		tp := n.Config().Topology
		if node < 0 || node >= tp.Nodes || port < 0 || port > tp.Ports {
			reply <- ctlResp{err: fmt.Errorf("node %d port %d out of range", node, port)}
			return
		}
		reply <- ctlResp{v: map[string]any{
			"node":            node,
			"port":            port,
			"free_vcs":        n.FreeVCsAt(node, port),
			"guaranteed_load": n.GuaranteedLoadAt(node, port),
			"cycle":           n.Now(),
		}}
	}) {
		return
	}
	resp, ok := d.await(w, r, reply)
	if !ok {
		return
	}
	if resp.err != nil {
		http.Error(w, resp.err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp.v)
}

// tenantRequest sets one tenant's admission quota. Zero fields mean
// unlimited; the Mbps budget is converted to the fabric's guaranteed
// cycles/round unit at the current link configuration.
type tenantRequest struct {
	Tenant            string  `json:"tenant"`
	MaxSessions       int     `json:"max_sessions"`
	MaxGuaranteedMbps float64 `json:"max_guaranteed_mbps"`
}

func (d *daemon) handleTenant(w http.ResponseWriter, r *http.Request) {
	var req tenantRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.MaxSessions < 0 || req.MaxGuaranteedMbps < 0 {
		http.Error(w, "quota fields must be non-negative", http.StatusBadRequest)
		return
	}
	reply := make(chan ctlResp, 1)
	if !d.submit(w, func(n *network.Network) {
		q := admission.TenantQuota{MaxSessions: req.MaxSessions}
		if req.MaxGuaranteedMbps > 0 {
			q.MaxGuaranteed = n.GuaranteedCyclesFor(traffic.ConnSpec{
				Class: flit.ClassCBR,
				Rate:  traffic.Rate(req.MaxGuaranteedMbps) * traffic.Mbps,
			})
		}
		n.Tenants().SetQuota(req.Tenant, q)
		u := n.Tenants().Usage(req.Tenant)
		reply <- ctlResp{v: map[string]any{
			"tenant":                req.Tenant,
			"max_sessions":          q.MaxSessions,
			"max_guaranteed_cycles": q.MaxGuaranteed,
			"sessions":              u.Sessions,
			"guaranteed_cycles":     u.Guaranteed,
			"cycle":                 n.Now(),
		}}
	}) {
		return
	}
	if resp, ok := d.await(w, r, reply); ok {
		writeJSON(w, resp.v)
	}
}

type tenantInfo struct {
	Tenant           string `json:"tenant"`
	Limited          bool   `json:"limited"` // an explicit quota is set
	MaxSessions      int    `json:"max_sessions"`
	MaxGuaranteed    int    `json:"max_guaranteed_cycles"`
	Sessions         int    `json:"sessions"`
	GuaranteedCycles int    `json:"guaranteed_cycles"`
}

func (d *daemon) handleTenants(w http.ResponseWriter, r *http.Request) {
	reply := make(chan ctlResp, 1)
	if !d.submit(w, func(n *network.Network) {
		t := n.Tenants()
		out := make([]tenantInfo, 0)
		for _, name := range t.Names() {
			q, limited := t.Quota(name)
			u := t.Usage(name)
			out = append(out, tenantInfo{
				Tenant: name, Limited: limited,
				MaxSessions: q.MaxSessions, MaxGuaranteed: q.MaxGuaranteed,
				Sessions: u.Sessions, GuaranteedCycles: u.Guaranteed,
			})
		}
		reply <- ctlResp{v: map[string]any{"tenants": out, "cycle": n.Now()}}
	}) {
		return
	}
	if resp, ok := d.await(w, r, reply); ok {
		writeJSON(w, resp.v)
	}
}

type connInfo struct {
	Conn     int     `json:"conn"`
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Class    string  `json:"class"`
	RateMbps float64 `json:"rate_mbps"`
	Tenant   string  `json:"tenant,omitempty"`
	Open     bool    `json:"open"`
	Broken   bool    `json:"broken"`
	Degraded bool    `json:"degraded"`
	Restores int     `json:"restores"`
}

func (d *daemon) handleConns(w http.ResponseWriter, r *http.Request) {
	reply := make(chan ctlResp, 1)
	if !d.submit(w, func(n *network.Network) {
		out := make([]connInfo, 0, len(n.Conns()))
		for _, c := range n.Conns() {
			class := "cbr"
			if c.Spec.Class == flit.ClassVBR {
				class = "vbr"
			}
			out = append(out, connInfo{
				Conn: int(c.ID), Src: c.Src, Dst: c.Dst, Class: class,
				RateMbps: float64(c.Spec.Rate) / float64(traffic.Mbps),
				Tenant:   c.Tenant,
				Open:     c.Open(), Broken: c.Broken(), Degraded: c.Degraded,
				Restores: c.Restores,
			})
		}
		reply <- ctlResp{v: map[string]any{"conns": out, "cycle": n.Now()}}
	}) {
		return
	}
	if resp, ok := d.await(w, r, reply); ok {
		writeJSON(w, resp.v)
	}
}

func (d *daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	reply := make(chan ctlResp, 1)
	if !d.submit(w, func(n *network.Network) {
		open := 0
		for _, c := range n.Conns() {
			if c.Open() {
				open++
			}
		}
		st := n.Stats()
		tp := n.Config().Topology
		shape := tp.Shape()
		params := map[string]int{}
		for _, p := range shape.Params {
			params[p.Name] = p.Value
		}
		kind := shape.Kind
		if kind == "" {
			kind = d.o.topo
		}
		reply <- ctlResp{v: map[string]any{
			"cycle": n.Now(),
			"topology": map[string]any{
				"kind":    kind,
				"params":  params,
				"nodes":   tp.Nodes,
				"links":   len(tp.Links),
				"regions": tp.NumRegions(),
				"route":   d.o.route,
			},
			"conns_open":            open,
			"conns_total":           len(n.Conns()),
			"setup_attempts":        st.SetupAttempts,
			"setup_accepted":        st.SetupAccepted,
			"setup_rejected":        st.SetupRejected,
			"setup_retries":         st.SetupRetries,
			"closed":                st.Closed,
			"flits_delivered":       st.FlitsDelivered,
			"be_delivered":          st.BEDelivered,
			"conns_broken":          st.ConnsBroken,
			"conns_restored":        st.ConnsRestored,
			"conns_degraded":        n.DegradedLive(),
			"conns_promoted":        st.ConnsPromoted,
			"checkpoint":            d.o.checkpoint,
			"last_checkpoint_cycle": d.lastCkpt,
			"queue_depth":           len(d.ctl),
		}}
	}) {
		return
	}
	if resp, ok := d.await(w, r, reply); ok {
		writeJSON(w, resp.v)
	}
}
