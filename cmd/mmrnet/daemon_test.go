package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startTestDaemon launches runDaemon on a free port and waits until the
// control API is reachable. Stop it by sending on sigc and draining done.
func startTestDaemon(t *testing.T, o simOpts) (addr string, sigc chan os.Signal, done chan error, out *bytes.Buffer) {
	t.Helper()
	o.serve = true
	o.serveAddr = "127.0.0.1:0"
	ready := make(chan string, 1)
	o.afterServe = func(a string) { ready <- a }
	sigc = make(chan os.Signal, 1)
	done = make(chan error, 1)
	out = &bytes.Buffer{}
	var diag bytes.Buffer
	go func() { done <- runDaemon(o, out, &diag, sigc) }()
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v\n%s", err, diag.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up within 10s")
	}
	return addr, sigc, done, out
}

// stopDaemon sends SIGTERM and waits for a clean exit.
func stopDaemon(t *testing.T, sigc chan os.Signal, done chan error) {
	t.Helper()
	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon drain failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s")
	}
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad response %q: %v", url, buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestDaemonControlAPI drives the full request surface against a live
// daemon: open, status, query, modify, conns, close, the
// degrade-to-best-effort path for an inadmissible request, and a
// graceful SIGTERM drain that persists a final checkpoint.
func TestDaemonControlAPI(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fabric.ckpt")
	o := defaultOpts()
	o.seed = 5
	o.checkpoint = ckpt
	addr, sigc, done, out := startTestDaemon(t, o)
	base := "http://" + addr

	var opened openResponse
	if code, body := postJSON(t, base+"/api/open",
		openRequest{Src: 0, Dst: 5, Class: "cbr", RateMbps: 40}, &opened); code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	if opened.Degraded || opened.Conn < 0 || len(opened.Nodes) < 2 {
		t.Fatalf("open: unexpected response %+v", opened)
	}

	var status map[string]any
	getJSON(t, base+"/api/status", &status)
	if got := status["conns_open"].(float64); got != 1 {
		t.Fatalf("status: conns_open = %v, want 1", got)
	}

	var query map[string]any
	getJSON(t, fmt.Sprintf("%s/api/query?node=%d&port=0", base, opened.Nodes[0]), &query)
	if query["free_vcs"].(float64) <= 0 {
		t.Fatalf("query: no free VCs reported: %v", query)
	}

	if code, body := postJSON(t, base+"/api/modify",
		modifyRequest{Conn: opened.Conn, RateMbps: 80}, nil); code != http.StatusOK {
		t.Fatalf("modify: status %d: %s", code, body)
	}
	if code, _ := postJSON(t, base+"/api/modify", modifyRequest{Conn: 9999, RateMbps: 10}, nil); code != http.StatusNotFound {
		t.Fatalf("modify unknown conn: status %d, want 404", code)
	}

	var conns struct {
		Conns []connInfo `json:"conns"`
	}
	getJSON(t, base+"/api/conns", &conns)
	if len(conns.Conns) != 1 || conns.Conns[0].Conn != opened.Conn || conns.Conns[0].RateMbps != 80 {
		t.Fatalf("conns: %+v", conns.Conns)
	}

	// An inadmissible rate exhausts the retry budget and then degrades
	// to a best-effort flow instead of being refused.
	var degraded openResponse
	if code, body := postJSON(t, base+"/api/open",
		openRequest{Src: 1, Dst: 6, Class: "cbr", RateMbps: 1e6}, &degraded); code != http.StatusOK {
		t.Fatalf("degraded open: status %d: %s", code, body)
	}
	if !degraded.Degraded || degraded.Conn != -1 {
		t.Fatalf("degraded open: %+v, want degraded best-effort fallback", degraded)
	}
	// With no_retry the same request is refused outright.
	if code, _ := postJSON(t, base+"/api/open",
		openRequest{Src: 1, Dst: 6, RateMbps: 1e6, NoRetry: true}, nil); code != http.StatusConflict {
		t.Fatalf("no_retry open: status %d, want 409", code)
	}

	if code, body := postJSON(t, base+"/api/close", closeRequest{Conn: opened.Conn}, nil); code != http.StatusOK {
		t.Fatalf("close: status %d: %s", code, body)
	}
	if code, _ := postJSON(t, base+"/api/close", closeRequest{Conn: opened.Conn}, nil); code == http.StatusOK {
		t.Fatal("double close succeeded")
	}

	stopDaemon(t, sigc, done)
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	if !strings.Contains(out.String(), "drained at cycle") {
		t.Fatalf("drain report missing from output:\n%s", out.String())
	}
}

// TestDaemonRestartResume kills a daemon mid-session and restarts it
// from its checkpoint: the fabric resumes at the checkpointed cycle with
// the connection still open and traffic still flowing.
func TestDaemonRestartResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fabric.ckpt")
	o := defaultOpts()
	o.seed = 7
	o.checkpoint = ckpt
	o.checkpointInterval = 50_000

	addr, sigc, done, _ := startTestDaemon(t, o)
	base := "http://" + addr
	var opened openResponse
	if code, body := postJSON(t, base+"/api/open",
		openRequest{Src: 2, Dst: 9, Class: "vbr", RateMbps: 20}, &opened); code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	stopDaemon(t, sigc, done)

	o.restore = true
	addr, sigc, done, _ = startTestDaemon(t, o)
	base = "http://" + addr
	var status map[string]any
	getJSON(t, base+"/api/status", &status)
	if cycle := status["cycle"].(float64); cycle <= 0 {
		t.Fatalf("restored fabric restarted from cycle %v, want the checkpointed clock", cycle)
	}
	if got := status["conns_open"].(float64); got != 1 {
		t.Fatalf("restored fabric lost the connection: conns_open = %v", got)
	}
	before := status["flits_delivered"].(float64)

	// The restored connection keeps delivering.
	deadline := time.Now().Add(15 * time.Second)
	for {
		getJSON(t, base+"/api/status", &status)
		if status["flits_delivered"].(float64) > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored fabric delivered nothing new (stuck at %v flits)", before)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stopDaemon(t, sigc, done)
}

// TestValidateOpts exercises the flag cross-checks: nonsense values and
// contradictory mode combinations are rejected with specific errors.
func TestValidateOpts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(o *simOpts)
		set  []string
		want string // substring of the error; "" = must pass
	}{
		{"defaults", func(o *simOpts) {}, nil, ""},
		{"negative workers", func(o *simOpts) { o.netWorkers = -2 }, nil, "net-workers"},
		{"zero vcs", func(o *simOpts) { o.vcs = 0 }, nil, "-vcs"},
		{"negative cycles", func(o *simOpts) { o.cycles = -1 }, nil, "-cycles"},
		{"vbr fraction", func(o *simOpts) { o.vbr = 1.5 }, nil, "-vbr"},
		{"drop probability", func(o *simOpts) { o.faultDrop = 2 }, nil, "fault-drop"},
		{"serve with batch flags", func(o *simOpts) { o.serve = true; o.conns = 10 }, []string{"conns"}, "contradicts -serve"},
		{"serve with fault plan", func(o *simOpts) { o.serve = true; o.faultMTBF = 100 }, []string{"fault-mtbf"}, "contradicts -serve"},
		{"serve with metrics addr", func(o *simOpts) { o.serve = true; o.metricsAddr = ":9090" }, []string{"metrics-addr"}, "contradicts -serve"},
		{"restore without checkpoint", func(o *simOpts) { o.serve = true; o.restore = true }, []string{"restore"}, "-restore needs -checkpoint"},
		{"interval without checkpoint", func(o *simOpts) { o.serve = true; o.checkpointInterval = 100 }, []string{"checkpoint-interval"}, "-checkpoint-interval needs -checkpoint"},
		{"checkpoint without serve", func(o *simOpts) { o.checkpoint = "x.ckpt" }, []string{"checkpoint"}, "daemon mode"},
		{"serve ok", func(o *simOpts) {
			o.serve = true
			o.checkpoint = "x.ckpt"
			o.checkpointInterval = 100
			o.restore = true
		}, []string{"serve", "checkpoint", "checkpoint-interval", "restore"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaultOpts()
			tc.mut(&o)
			set := map[string]bool{}
			for _, f := range tc.set {
				set[f] = true
			}
			err := validateOpts(o, set)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestDaemonFatTreeStatus runs the daemon on a generated fat tree and
// checks that /api/status reports the fabric's shape, that sessions
// establish across pods, and that periodic checkpoints land while the
// fabric is live.
func TestDaemonFatTreeStatus(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fabric.ckpt")
	o := defaultOpts()
	o.topo = "fattree"
	o.ftK = 4
	o.seed = 11
	o.checkpoint = ckpt
	o.checkpointInterval = 10_000
	addr, sigc, done, _ := startTestDaemon(t, o)
	base := "http://" + addr

	// Cross-pod session between two edge routers: edge(0,0) -> edge(1,1).
	var opened openResponse
	if code, body := postJSON(t, base+"/api/open",
		openRequest{Src: 0, Dst: 5, Class: "cbr", RateMbps: 20}, &opened); code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}

	var status map[string]any
	getJSON(t, base+"/api/status", &status)
	topo, ok := status["topology"].(map[string]any)
	if !ok {
		t.Fatalf("status has no topology object: %v", status)
	}
	if topo["kind"] != "fattree" || topo["nodes"].(float64) != 20 || topo["regions"].(float64) != 5 {
		t.Fatalf("topology status = %v, want fattree with 20 nodes in 5 regions", topo)
	}
	if params := topo["params"].(map[string]any); params["k"].(float64) != 4 {
		t.Fatalf("topology params = %v, want k=4", params)
	}

	// A periodic snapshot lands while sessions are live.
	deadline := time.Now().Add(20 * time.Second)
	for {
		getJSON(t, base+"/api/status", &status)
		if status["last_checkpoint_cycle"].(float64) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint within 20s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("periodic checkpoint missing: %v", err)
	}
	stopDaemon(t, sigc, done)
}
