package main

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"mmr/internal/network"
)

// TestMetricsEndpointMatchesStats is the observability acceptance test:
// run a seeded fault scenario with the HTTP endpoint enabled, scrape
// /metrics while the server is alive, and check the scraped counter
// totals against the end-of-run statistics snapshot.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	o := defaultOpts()
	o.conns = 32
	o.warmup = 800
	o.cycles = 2500
	o.seed = 7
	o.faultLinks = 2
	o.netWorkers = 1
	o.metricsAddr = "127.0.0.1:0"

	var scraped map[string]float64
	var st *network.Stats
	o.afterRun = func(addr string, n *network.Network) {
		if addr == "" {
			t.Fatal("no metrics server address")
		}
		st = n.Stats()
		body := httpGet(t, "http://"+addr+"/metrics")
		scraped = parsePromTotals(t, body)

		// The companion endpoints answer too.
		if js := httpGet(t, "http://"+addr+"/metrics.json"); !strings.Contains(js, "mmr_net_flits_delivered_total") {
			t.Error("/metrics.json missing delivered counter")
		}
		if fl := httpGet(t, "http://"+addr+"/flight"); !strings.Contains(fl, "link-down") {
			t.Errorf("/flight has no link-down event:\n%.300s", fl)
		}
	}
	var out, diag strings.Builder
	if err := run(o, &out, &diag); err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 {
		t.Fatal("scenario injected no faults; the fault counters below are vacuous")
	}

	checks := []struct {
		family string
		want   int64
	}{
		{"mmr_net_flits_generated_total", st.FlitsGenerated},
		{"mmr_net_flits_delivered_total", st.FlitsDelivered},
		{"mmr_net_link_flits_total", st.LinkFlits},
		{"mmr_net_setup_attempts_total", st.SetupAttempts},
		{"mmr_net_setup_accepted_total", st.SetupAccepted},
		{"mmr_net_faults_injected_total", st.FaultsInjected},
		{"mmr_net_faults_repaired_total", st.FaultsRepaired},
		{"mmr_net_conns_broken_total", st.ConnsBroken},
		{"mmr_net_conns_restored_total", st.ConnsRestored},
	}
	for _, c := range checks {
		got, ok := scraped[c.family]
		if !ok {
			t.Errorf("scrape missing family %s", c.family)
			continue
		}
		if int64(got) != c.want {
			t.Errorf("scraped %s = %.0f, stats say %d", c.family, got, c.want)
		}
	}
	if scraped["mmr_net_cycles"] != float64(st.Cycles) {
		t.Errorf("scraped mmr_net_cycles = %v, want %d", scraped["mmr_net_cycles"], st.Cycles)
	}
	if !strings.Contains(out.String(), "faults") {
		t.Error("report missing fault summary")
	}
}

// TestRunPlainReport covers the no-endpoint path end to end, including
// the FormatAccumCell min/max cells on an idle accumulator: a run too
// short to deliver anything must print "-" rather than a fake 0.
func TestRunPlainReport(t *testing.T) {
	o := defaultOpts()
	o.conns = 0
	o.be = 0
	o.warmup = 0
	o.cycles = 5
	var out, diag strings.Builder
	if err := run(o, &out, &diag); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(min -, max -)") {
		t.Errorf("empty latency accumulator should print '-' cells:\n%s", out.String())
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parsePromTotals sums the samples of every plain (non-histogram-bucket)
// family in a Prometheus text page, collapsing per-node shard labels.
func parsePromTotals(t *testing.T, body string) map[string]float64 {
	t.Helper()
	totals := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		totals[name] += v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return totals
}
