// Command mmrsim runs one single-router MMR simulation at a chosen
// offered load and scheduling configuration, printing the §5 metrics and
// a per-rate breakdown.
//
// Example:
//
//	mmrsim -load 0.8 -scheme biased -candidates 8
//	mmrsim -load 0.9 -scheme fixed -candidates 2 -cycles 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mmr/internal/exp"
	"mmr/internal/flit"
	"mmr/internal/router"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/traffic"
)

func main() {
	var (
		load       = flag.Float64("load", 0.8, "offered load as a fraction of switch bandwidth")
		scheme     = flag.String("scheme", "biased", "scheduling scheme: biased, fixed, autonet, perfect")
		cands      = flag.Int("candidates", 8, "link scheduler candidates per input port (1-8 in the paper)")
		ports      = flag.Int("ports", 8, "router radix")
		vcs        = flag.Int("vcs", 256, "virtual channels per input port")
		k          = flag.Int("k", 2, "round multiplier K (round = K × VCs flit cycles)")
		warmup     = flag.Int64("warmup", 20_000, "warmup cycles before measurement")
		cycles     = flag.Int64("cycles", 100_000, "measured cycles (the paper uses ~100,000)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		byRate     = flag.Bool("by-rate", false, "print per-rate delay/jitter breakdown")
		beRate     = flag.Float64("be", 0, "best-effort packets/cycle/port to mix in")
		verbose    = flag.Bool("v", false, "print workload composition")
		metricsOut = flag.String("metrics", "", "write the metric registry after the run: '-' = Prometheus text on stdout, else a file path (.json for JSON)")
	)
	flag.Parse()

	cfg := router.PaperConfig()
	cfg.Ports = *ports
	cfg.VCM.VirtualChannels = *vcs
	cfg.K = *k
	cfg.Seed = *seed

	variant := exp.SchemeVariant(*scheme, *cands)
	variant.Mutate(&cfg)

	r, err := router.New(cfg)
	if err != nil {
		fail(err)
	}
	wl, err := traffic.Generate(traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: *load, MaxPortLoad: 1,
	}, sim.NewRNG(*seed))
	if err != nil {
		fail(err)
	}
	if _, err := r.EstablishWorkload(wl); err != nil {
		fail(err)
	}
	if *beRate > 0 {
		for p := 0; p < cfg.Ports; p++ {
			if err := r.AddBestEffortFlow(p, (p+cfg.Ports/2)%cfg.Ports, *beRate); err != nil {
				fail(err)
			}
		}
	}
	if *verbose {
		fmt.Printf("workload: %d connections, offered load %.4f (target %.2f)\n",
			len(wl.Conns), wl.OfferedLoad, *load)
	}

	if *metricsOut != "" {
		// Before the run, so the per-class delay/jitter histograms
		// observe the measurement window.
		r.EnableMetrics()
	}

	m := r.Run(*warmup, *cycles)

	fmt.Printf("scheme      %s (%d candidates)\n", variant.Name, *cands)
	fmt.Printf("offered     %.4f of switch bandwidth (%d connections)\n", wl.OfferedLoad, len(wl.Conns))
	fmt.Printf("utilization %.4f\n", m.SwitchUtilization)
	fmt.Printf("delay       %.3f cycles = %.3f µs (mean head-of-VC wait, §5 definition)\n",
		m.Delay.Mean(), m.DelayMicros)
	fmt.Printf("            %.3f cycles including VC queueing, %.3f cycles end-to-end\n",
		m.VCMDelay.Mean(), m.TotalDelay.Mean())
	fmt.Printf("jitter      %.3f cycles (flit-weighted), %.3f cycles (per-connection mean)\n",
		m.Jitter.Mean(), m.ConnMeanJitter.Mean())
	fmt.Printf("delivered   %d stream flits over %d cycles\n", m.FlitsDelivered, m.Cycles)
	if *beRate > 0 {
		fmt.Printf("best-effort %d packets delivered, latency %.2f cycles\n",
			m.PerClassDelivered[flit.ClassBestEffort], m.BestEffortLatency.Mean())
	}

	if *byRate {
		printByRate(r, m)
	}
	if *metricsOut != "" {
		if err := dumpMetrics(r, *metricsOut); err != nil {
			fail(err)
		}
	}
}

// dumpMetrics writes the router's gathered metric snapshot to dst:
// "-" renders Prometheus text on stdout, a path ending in .json writes
// the JSON form, any other path writes Prometheus text.
func dumpMetrics(r *router.Router, dst string) error {
	snap := r.GatherMetrics()
	if dst == "-" {
		return snap.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(dst, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WritePrometheus(f)
	}
	return err
}

func printByRate(r *router.Router, m *router.Metrics) {
	byRate := map[float64]*stats.Accumulator{}
	byRateJ := map[float64]*stats.Accumulator{}
	for i, c := range r.Connections() {
		key := float64(c.Spec.Rate)
		if byRate[key] == nil {
			byRate[key] = &stats.Accumulator{}
			byRateJ[key] = &stats.Accumulator{}
		}
		d, j := m.ConnDelay[i], m.ConnJitter[i]
		byRate[key].Merge(&d)
		byRateJ[key].Merge(&j)
	}
	var rates []float64
	for k := range byRate {
		rates = append(rates, k)
	}
	sort.Float64s(rates)
	fmt.Println("\nper-rate breakdown (delay/jitter in cycles):")
	for _, rt := range rates {
		fmt.Printf("  %10s  flits=%-8d delay=%8.3f  jitter=%8.3f\n",
			traffic.Rate(rt), byRate[rt].N(), byRate[rt].Mean(), byRateJ[rt].Mean())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mmrsim:", err)
	os.Exit(1)
}
