package mmr_test

import (
	"math"
	"strings"
	"testing"

	"mmr"
)

// TestPublicAPIQuickstart mirrors the README quick start.
func TestPublicAPIQuickstart(t *testing.T) {
	r, err := mmr.NewRouter(mmr.PaperRouterConfig())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := r.Establish(mmr.ConnSpec{Class: mmr.ClassCBR, Rate: 55 * mmr.Mbps, In: 0, Out: 3})
	if err != nil {
		t.Fatal(err)
	}
	if conn.ID != 0 {
		t.Fatalf("first connection ID = %d", conn.ID)
	}
	m := r.Run(2_000, 20_000)
	want := mmr.PaperLink.FlitsPerCycle(55*mmr.Mbps) * 20_000
	if math.Abs(float64(m.FlitsDelivered)-want) > 3 {
		t.Fatalf("delivered %d, want ~%.0f", m.FlitsDelivered, want)
	}
	if m.Delay.Mean() != 1 || m.Jitter.Mean() != 0 {
		t.Fatalf("uncontended QoS wrong: delay=%v jitter=%v", m.Delay.Mean(), m.Jitter.Mean())
	}
}

func TestPublicAPIWorkload(t *testing.T) {
	wl, err := mmr.GenerateWorkload(mmr.PaperWorkloadConfig(0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wl.OfferedLoad-0.5) > 0.01 {
		t.Fatalf("offered load %.3f", wl.OfferedLoad)
	}
	r, _ := mmr.NewRouter(mmr.PaperRouterConfig())
	if _, err := r.EstablishWorkload(wl); err != nil {
		t.Fatal(err)
	}
	m := r.Run(2_000, 10_000)
	if math.Abs(m.SwitchUtilization-0.5) > 0.05 {
		t.Fatalf("utilization %.3f", m.SwitchUtilization)
	}
}

func TestPublicAPISchemes(t *testing.T) {
	for _, scheme := range []mmr.PriorityScheme{mmr.Biased{}, mmr.Fixed{}, mmr.OldestFirst{}} {
		cfg := mmr.PaperRouterConfig()
		cfg.Scheme = scheme
		if _, err := mmr.NewRouter(cfg); err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
	}
	for _, arb := range []mmr.ArbiterKind{mmr.ArbPriority, mmr.ArbAutonet, mmr.ArbPerfect} {
		cfg := mmr.PaperRouterConfig()
		cfg.Arbiter = arb
		if _, err := mmr.NewRouter(cfg); err != nil {
			t.Fatalf("arbiter %v: %v", arb, err)
		}
	}
}

func TestPublicAPITopologiesAndNetwork(t *testing.T) {
	for _, build := range []func() (*mmr.Topology, error){
		func() (*mmr.Topology, error) { return mmr.Mesh(3, 3, 4) },
		func() (*mmr.Topology, error) { return mmr.Torus(3, 3, 4) },
		func() (*mmr.Topology, error) { return mmr.Irregular(10, 6, 3, 5) },
	} {
		topo, err := build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := mmr.DefaultNetworkConfig(topo)
		cfg.VCs = 16
		n, err := mmr.NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Open(0, topo.Nodes-1, mmr.ConnSpec{Class: mmr.ClassCBR, Rate: 10 * mmr.Mbps}); err != nil {
			t.Fatal(err)
		}
		n.Run(5_000)
		if n.Stats().FlitsDelivered == 0 {
			t.Fatal("network delivered nothing")
		}
	}
}

func TestPublicAPITraceDrivenConnection(t *testing.T) {
	tr, err := mmr.GenerateTrace(mmr.DefaultTraceGenConfig(8*mmr.Mbps, 600), 7)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := mmr.NewRouter(mmr.PaperRouterConfig())
	src := mmr.NewTraceSource(tr, mmr.PaperLink, tr.PeakRate())
	_, err = r.EstablishWithSource(mmr.ConnSpec{
		Class: mmr.ClassVBR, Rate: tr.MeanRate(), PeakRate: tr.PeakRate(), In: 0, Out: 1,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Run(5_000, 100_000)
	if m.PerClassDelivered[mmr.ClassVBR] == 0 {
		t.Fatal("trace-driven stream delivered nothing")
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr, _ := mmr.GenerateTrace(mmr.DefaultTraceGenConfig(4*mmr.Mbps, 60), 1)
	var b strings.Builder
	if err := mmr.FormatTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	got, err := mmr.ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(tr.Frames) {
		t.Fatal("round trip lost frames")
	}
}

func TestPublicAPIDynamicBandwidth(t *testing.T) {
	r, _ := mmr.NewRouter(mmr.PaperRouterConfig())
	conn, err := r.Establish(mmr.ConnSpec{Class: mmr.ClassCBR, Rate: 10 * mmr.Mbps, In: 0, Out: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetBandwidth(conn, 100*mmr.Mbps); err != nil {
		t.Fatal(err)
	}
	m := r.Run(100, 20_000)
	want := mmr.PaperLink.FlitsPerCycle(100*mmr.Mbps) * 20_000
	if math.Abs(float64(m.FlitsDelivered)-want) > want*0.05 {
		t.Fatalf("post-change delivery %d, want ~%.0f", m.FlitsDelivered, want)
	}
}

func TestPublicAPIRates(t *testing.T) {
	if len(mmr.PaperRates) != 9 {
		t.Fatal("rate population wrong")
	}
	if mmr.PaperLink.FlitBits != 128 {
		t.Fatal("paper link wrong")
	}
	var a mmr.Accumulator
	a.Add(1)
	a.Add(3)
	if a.Mean() != 2 {
		t.Fatal("accumulator alias broken")
	}
}
