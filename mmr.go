// Package mmr is a Go implementation of the MultiMedia Router (MMR) from
// "MMR: A High-Performance Multimedia Router — Architecture and Design
// Trade-Offs" (Duato, Yalamanchili, Caminero, Love, Quiles; HPCA 1999):
// a single-chip cut-through router for cluster/LAN multimedia traffic
// with per-connection QoS.
//
// The package is a facade over the implementation packages:
//
//   - Router simulates one MMR (Figure 1 of the paper) cycle by cycle:
//     virtual channel memories, link schedulers with candidate sets,
//     priority-biased switch scheduling, round-based bandwidth
//     enforcement and credit flow control.
//   - Network joins routers over a Topology with EPB connection
//     establishment and up*/down* best-effort routing.
//   - The exp subpackage (internal) regenerates every figure of the
//     paper's evaluation; see cmd/mmrbench and EXPERIMENTS.md.
//
// Quick start:
//
//	r, _ := mmr.NewRouter(mmr.PaperRouterConfig())
//	conn, _ := r.Establish(mmr.ConnSpec{Class: mmr.ClassCBR, Rate: 55 * mmr.Mbps, In: 0, Out: 3})
//	m := r.Run(20_000, 100_000)
//	fmt.Println(m.Delay.Mean(), m.Jitter.Mean())
//	_ = conn
package mmr

import (
	"io"

	"mmr/internal/flit"
	"mmr/internal/network"
	"mmr/internal/router"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/topology"
	"mmr/internal/trace"
	"mmr/internal/traffic"
)

// Rates and link geometry.
type (
	// Rate is a bandwidth in bits per second.
	Rate = traffic.Rate
	// Link describes a physical link and the router's flit geometry.
	Link = traffic.Link
)

// Bandwidth units.
const (
	Kbps = traffic.Kbps
	Mbps = traffic.Mbps
	Gbps = traffic.Gbps
)

// PaperRates is the §5 connection-rate population.
var PaperRates = traffic.PaperRates

// PaperLink is the §5 link: 1.24 Gbps, 128-bit flits.
var PaperLink = traffic.PaperLink

// Service classes.
type Class = flit.Class

// The MMR's four service classes.
const (
	ClassCBR        = flit.ClassCBR
	ClassVBR        = flit.ClassVBR
	ClassControl    = flit.ClassControl
	ClassBestEffort = flit.ClassBestEffort
)

// ConnSpec describes a connection request.
type ConnSpec = traffic.ConnSpec

// Workload generation (the §5 experimental setup).
type (
	// Workload is a generated set of connections.
	Workload = traffic.Workload
	// WorkloadConfig controls random workload generation.
	WorkloadConfig = traffic.WorkloadConfig
)

// GenerateWorkload draws a random workload at a target offered load.
func GenerateWorkload(cfg WorkloadConfig, seed uint64) (*Workload, error) {
	return traffic.Generate(cfg, sim.NewRNG(seed))
}

// PaperWorkloadConfig returns the §5 workload setup at the given load.
func PaperWorkloadConfig(load float64) WorkloadConfig {
	return traffic.PaperWorkloadConfig(load)
}

// Single-router simulation.
type (
	// Router is one MMR instance.
	Router = router.Router
	// RouterConfig assembles a router.
	RouterConfig = router.Config
	// Connection is an established virtual circuit.
	Connection = router.Connection
	// Metrics is a measurement snapshot.
	Metrics = router.Metrics
	// ArbiterKind selects the switch scheduling algorithm.
	ArbiterKind = router.ArbiterKind
)

// Switch scheduling algorithms (§5.1).
const (
	ArbPriority = router.ArbPriority
	ArbAutonet  = router.ArbAutonet
	ArbPerfect  = router.ArbPerfect
)

// Admission modes.
const (
	AdmitAllocation = router.AdmitAllocation
	AdmitRate       = router.AdmitRate
)

// NewRouter builds a router.
func NewRouter(cfg RouterConfig) (*Router, error) { return router.New(cfg) }

// PaperRouterConfig returns the §5 experimental router: 8×8, 256 VCs per
// input port, biased priorities, 8 candidates.
func PaperRouterConfig() RouterConfig { return router.PaperConfig() }

// Priority schemes (§5.1).
type (
	// PriorityScheme computes head-flit priorities.
	PriorityScheme = sched.PriorityScheme
	// Biased is the paper's dynamic priority-biasing scheme.
	Biased = sched.Biased
	// Fixed is the static-priority baseline.
	Fixed = sched.Fixed
	// OldestFirst is age-based arbitration (for ablations).
	OldestFirst = sched.OldestFirst
)

// Topologies.
type Topology = topology.Topology

// Mesh builds a w×h 2D mesh with the given ports per router.
func Mesh(w, h, ports int) (*Topology, error) { return topology.Mesh(w, h, ports) }

// Torus builds a w×h 2D torus.
func Torus(w, h, ports int) (*Topology, error) { return topology.Torus(w, h, ports) }

// Irregular builds a random connected NOW-style topology.
func Irregular(nodes, ports, avgDegree int, seed uint64) (*Topology, error) {
	return topology.Irregular(nodes, ports, avgDegree, sim.NewRNG(seed))
}

// Multi-router networks.
type (
	// Network is a fabric of MMRs.
	Network = network.Network
	// NetworkConfig sizes a network.
	NetworkConfig = network.Config
	// NetConn is an end-to-end connection through a network.
	NetConn = network.Conn
	// NetStats is a network measurement snapshot.
	NetStats = network.Stats
)

// NewNetwork builds a network.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return network.New(cfg) }

// DefaultNetworkConfig returns a workable configuration for a topology.
func DefaultNetworkConfig(t *Topology) NetworkConfig { return network.DefaultConfig(t) }

// Traffic sources and video traces.
type (
	// Source produces flit arrivals; Tick is called once per flit cycle.
	Source = traffic.Source
	// Trace is an MPEG frame-size trace.
	Trace = trace.Trace
	// TraceGenConfig controls synthetic trace generation.
	TraceGenConfig = trace.GenConfig
)

// ParseTrace reads a frame-size trace ("I 40000" per line, optional
// "fps 25" header).
func ParseTrace(r io.Reader) (*Trace, error) { return trace.Parse(r) }

// FormatTrace writes a trace in the ParseTrace format.
func FormatTrace(w io.Writer, t *Trace) error { return trace.Format(w, t) }

// GenerateTrace builds a synthetic MPEG-2-like trace with scene-level
// burstiness.
func GenerateTrace(cfg TraceGenConfig, seed uint64) (*Trace, error) {
	return trace.Generate(cfg, sim.NewRNG(seed))
}

// DefaultTraceGenConfig returns a plausible generator setup for the
// given mean rate and frame count.
func DefaultTraceGenConfig(rate Rate, frames int) TraceGenConfig {
	return trace.DefaultGenConfig(rate, frames)
}

// NewTraceSource replays a trace as a policed VBR source on link l.
func NewTraceSource(t *Trace, l Link, peak Rate) Source {
	return trace.NewSource(t, l, peak)
}

// Statistics helpers.
type (
	// Accumulator is a streaming mean/variance/min/max.
	Accumulator = stats.Accumulator
	// Figure is a set of labeled series (one regenerated paper figure).
	Figure = stats.Figure
	// Series is one curve of a figure.
	Series = stats.Series
)
