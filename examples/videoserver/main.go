// Videoserver: the paper's motivating workload (§1) — a video-on-demand
// server behind one MMR port fanning compressed video out to clients.
// The server's streams are VBR connections with an MPEG-like
// group-of-pictures structure; each client port also carries unrelated
// CBR telephony and a little best-effort web traffic. The example shows
// the per-class QoS the router maintains: VBR streams get their permanent
// bandwidth plus prioritized excess, CBR keeps constant spacing, and
// best-effort uses what is left.
package main

import (
	"fmt"
	"log"

	"mmr"
)

func main() {
	cfg := mmr.PaperRouterConfig()
	r, err := mmr.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const serverPort = 0
	// Seven clients on ports 1-7, each receiving one MPEG-2-class stream:
	// 20 Mbps average, 60 Mbps peak (I-frames burst). Priority reflects
	// subscription tier — clients 1-3 premium.
	for client := 1; client < cfg.Ports; client++ {
		prio := 0
		if client <= 3 {
			prio = 2
		}
		if _, err := r.Establish(mmr.ConnSpec{
			Class:    mmr.ClassVBR,
			Rate:     20 * mmr.Mbps,
			PeakRate: 60 * mmr.Mbps,
			In:       serverPort,
			Out:      client,
			Priority: prio,
		}); err != nil {
			log.Fatalf("video stream to client %d: %v", client, err)
		}
	}

	// Telephony between clients: 128 Kbps CBR pairs.
	for client := 1; client < cfg.Ports-1; client++ {
		if _, err := r.Establish(mmr.ConnSpec{
			Class: mmr.ClassCBR,
			Rate:  128 * mmr.Kbps,
			In:    client,
			Out:   client + 1,
		}); err != nil {
			log.Fatalf("telephony %d→%d: %v", client, client+1, err)
		}
	}

	// Light best-effort web traffic from every client toward the server.
	for client := 1; client < cfg.Ports; client++ {
		if err := r.AddBestEffortFlow(client, serverPort, 0.01); err != nil {
			log.Fatal(err)
		}
	}

	// ~20 ms of router time: enough for hundreds of video frames.
	m := r.Run(20_000, 200_000)

	fmt.Println("video-on-demand through one MMR:")
	fmt.Printf("  VBR video delivered   %8d flits\n", m.PerClassDelivered[mmr.ClassVBR])
	fmt.Printf("  CBR telephony         %8d flits\n", m.PerClassDelivered[mmr.ClassCBR])
	fmt.Printf("  best-effort web       %8d packets (latency %.1f cycles)\n",
		m.PerClassDelivered[mmr.ClassBestEffort], m.BestEffortLatency.Mean())
	fmt.Printf("  stream delay          %.3f cycles (%.3f µs)\n", m.Delay.Mean(), m.DelayMicros)
	fmt.Printf("  stream jitter         %.3f cycles\n", m.Jitter.Mean())
	fmt.Printf("  switch utilization    %.4f\n", m.SwitchUtilization)

	// Per-stream QoS: premium clients (higher VBR priority) should see
	// their excess bandwidth served first (§4.3).
	fmt.Println("\nper-connection jitter (video streams):")
	for i, c := range r.Connections() {
		if c.Spec.Class != mmr.ClassVBR {
			continue
		}
		fmt.Printf("  client %d (priority %d): jitter %.3f cycles over %d flits\n",
			c.Spec.Out, c.Spec.Priority, m.ConnJitter[i].Mean(), m.ConnJitter[i].N())
	}
}
