// Hybrid: the §3.4 traffic mix on one router — CBR and VBR streams over
// pipelined circuit switching coexisting with best-effort packets over
// virtual cut-through, all sharing the same pool of virtual channels and
// link bandwidth. The example sweeps the best-effort injection rate and
// shows that stream QoS holds while best-effort latency absorbs the
// congestion (§4.2: best-effort "only uses bandwidth that is available
// after satisfying the requirements of connections").
package main

import (
	"fmt"
	"log"

	"mmr"
)

func main() {
	fmt.Println("best-effort rate sweep at 60% stream load (8×8 MMR, biased priorities):")
	fmt.Printf("%-12s %-14s %-14s %-16s %-10s\n",
		"BE pkts/cyc", "CBR delay cyc", "CBR jitter", "BE latency cyc", "switch util")

	for _, beRate := range []float64{0, 0.02, 0.05, 0.1} {
		m, err := run(beRate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.2f %-14.3f %-14.3f %-16.2f %-10.4f\n",
			beRate, m.Delay.Mean(), m.Jitter.Mean(), m.BestEffortLatency.Mean(), m.SwitchUtilization)
	}
}

func run(beRate float64) (*mmr.Metrics, error) {
	cfg := mmr.PaperRouterConfig()
	r, err := mmr.NewRouter(cfg)
	if err != nil {
		return nil, err
	}

	// A 60% CBR+VBR workload drawn from the paper's rate population, with
	// a quarter of the connections VBR at 3× peaks.
	wcfg := mmr.PaperWorkloadConfig(0.6)
	wcfg.VBRFraction = 0.25
	wcfg.PeakFactor = 3
	wcfg.MaxPriority = 4
	wl, err := mmr.GenerateWorkload(wcfg, 42)
	if err != nil {
		return nil, err
	}
	if _, err := r.EstablishWorkload(wl); err != nil {
		return nil, err
	}

	// Best-effort flows between all port pairs at the swept rate.
	if beRate > 0 {
		for p := 0; p < cfg.Ports; p++ {
			if err := r.AddBestEffortFlow(p, (p+3)%cfg.Ports, beRate); err != nil {
				return nil, err
			}
		}
	}
	return r.Run(10_000, 80_000), nil
}
