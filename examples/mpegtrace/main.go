// Mpegtrace: drive the MMR with MPEG-2-style frame-size traces — the
// workload of the MMR project's follow-on evaluation. A synthetic trace
// with realistic GoP structure and scene-level burstiness is generated
// (or a real frame-size trace can be loaded from disk in the same
// format), replayed through the router's policed VBR path, and the
// resulting per-stream QoS is reported against the trace's own rate
// statistics.
package main

import (
	"fmt"
	"log"
	"os"

	"mmr"
)

func main() {
	// Load a real trace if one is supplied, otherwise synthesize one:
	// 2 minutes of 6 Mbps MPEG-2-like video at 30 fps.
	var tr *mmr.Trace
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err = mmr.ParseTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded trace %s\n", os.Args[1])
	} else {
		var err error
		tr, err = mmr.GenerateTrace(mmr.DefaultTraceGenConfig(6*mmr.Mbps, 3600), 2026)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("generated synthetic MPEG-2-like trace (pass a file to replay a real one)")
	}

	fmt.Printf("trace: %d frames, %.1f s, mean %v, peak %v\n",
		len(tr.Frames), tr.Duration(), tr.MeanRate(), tr.PeakRate())
	for kind, st := range tr.Stats() {
		fmt.Printf("  frame type %d: %5d frames, mean %8.0f bits\n", kind, st.Count, st.MeanBits)
	}

	// Six video streams share the router with CBR cross traffic; each
	// stream declares its trace's measured mean as permanent bandwidth and
	// 3x as peak (the concurrency factor oversubscribes peaks, §4.2).
	cfg := mmr.PaperRouterConfig()
	r, err := mmr.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		src := mmr.NewTraceSource(tr, cfg.Link, mmr.Rate(3*float64(tr.MeanRate())))
		_, err := r.EstablishWithSource(mmr.ConnSpec{
			Class:    mmr.ClassVBR,
			Rate:     tr.MeanRate(),
			PeakRate: mmr.Rate(3 * float64(tr.MeanRate())),
			In:       i,
			Out:      (i + 4) % cfg.Ports,
			Priority: i % 3,
		}, src)
		if err != nil {
			log.Fatal(err)
		}
	}
	for p := 0; p < cfg.Ports; p++ {
		if _, err := r.Establish(mmr.ConnSpec{
			Class: mmr.ClassCBR, Rate: 55 * mmr.Mbps, In: p, Out: (p + 1) % cfg.Ports,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// ~50 ms of router time: a few GoPs of every stream.
	m := r.Run(50_000, 500_000)

	fmt.Println("\nrouter under trace-driven VBR + CBR cross traffic:")
	fmt.Printf("  VBR delivered %d flits, CBR %d flits (util %.4f)\n",
		m.PerClassDelivered[mmr.ClassVBR], m.PerClassDelivered[mmr.ClassCBR], m.SwitchUtilization)
	fmt.Printf("  delay  mean %.2f cycles, p50 %.1f, p99 %.1f\n",
		m.Delay.Mean(), m.DelayP50, m.DelayP99)
	fmt.Printf("  jitter mean %.3f cycles, p99 %.1f\n", m.Jitter.Mean(), m.JitterP99)
}
