// Quickstart: build the paper's 8×8 MMR, establish a few CBR connections,
// run to steady state and print the §5 metrics.
package main

import (
	"fmt"
	"log"

	"mmr"
)

func main() {
	// The §5 router: 8 ports, 256 virtual channels per input port,
	// 1.24 Gbps links, 128-bit flits, biased priorities, 8 candidates.
	r, err := mmr.NewRouter(mmr.PaperRouterConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Establish three CBR connections. Admission reserves bandwidth on
	// each output link; establishment reserves an input virtual channel
	// and installs the per-VC scheduling state.
	for _, c := range []mmr.ConnSpec{
		{Class: mmr.ClassCBR, Rate: 120 * mmr.Mbps, In: 0, Out: 3},
		{Class: mmr.ClassCBR, Rate: 55 * mmr.Mbps, In: 1, Out: 3}, // shares output 3
		{Class: mmr.ClassCBR, Rate: 2 * mmr.Mbps, In: 2, Out: 5},
	} {
		conn, err := r.Establish(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("established connection %d: %v %v port %d → %d\n",
			conn.ID, c.Class, c.Rate, c.In, c.Out)
	}

	// Warm up for 10k flit cycles (~1 ms of router time), then measure
	// 100k cycles, as in the paper.
	m := r.Run(10_000, 100_000)

	fmt.Printf("\nover %d flit cycles (%.2f ms at 1.24 Gbps):\n",
		m.Cycles, float64(m.Cycles)*r.Config().Link.FlitCycleNanos()/1e6)
	fmt.Printf("  delivered %d flits\n", m.FlitsDelivered)
	fmt.Printf("  mean delay  %.3f cycles (%.3f µs)\n", m.Delay.Mean(), m.DelayMicros)
	fmt.Printf("  mean jitter %.3f cycles\n", m.Jitter.Mean())
	fmt.Printf("  switch utilization %.4f\n", m.SwitchUtilization)
}
