// Netsetup: connection churn on an irregular network of workstations —
// the environment the MMR's routing machinery targets (§3.5). Sessions
// arrive as a Poisson process, hold for an exponential time and tear
// down; each setup runs the EPB probe (reserving a VC and bandwidth per
// hop, backtracking around saturated links), and accepted connections
// stream CBR traffic end to end while best-effort packets ride the
// up*/down* adaptive routes underneath.
package main

import (
	"fmt"
	"log"

	"mmr"
)

func main() {
	// A 16-node NOW wired at random with average degree 3 — the irregular
	// topology class of refs [26,27].
	topo, err := mmr.Irregular(16, 6, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mmr.DefaultNetworkConfig(topo)
	cfg.VCs = 32
	n, err := mmr.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Best-effort background between random pairs.
	for i := 0; i < 12; i++ {
		src, dst := (i*5)%16, (i*11+3)%16
		if src != dst {
			if _, err := n.AddBestEffortFlow(src, dst, 0.002); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Session churn driven by the event engine: every ~2000 cycles a new
	// session request arrives at random endpoints; each accepted session
	// holds for ~40000 cycles.
	rng := newLCG(99)
	var schedule func(at int64)
	opened, rejected := 0, 0
	schedule = func(at int64) {
		n.Schedule(at, func() {
			src := int(rng() % 16)
			dst := int(rng() % 16)
			if src == dst {
				dst = (dst + 1) % 16
			}
			rates := mmr.PaperRates
			spec := mmr.ConnSpec{Class: mmr.ClassCBR, Rate: rates[rng()%uint64(len(rates))]}
			conn, err := n.Open(src, dst, spec)
			if err != nil {
				rejected++
			} else {
				opened++
				hold := int64(20_000 + rng()%40_000)
				n.Schedule(at+hold, func() {
					// Teardown: stop and release once drained (bounded).
					if err := n.DrainAndClose(conn, 2_000); err != nil {
						log.Printf("teardown of %d: %v", conn.ID, err)
					}
				})
			}
			schedule(at + 1_000 + int64(rng()%2_000))
		})
	}
	schedule(1_000)

	n.Run(200_000)
	st := n.Stats()

	fmt.Printf("irregular NOW: %d routers, %d links\n", topo.Nodes, len(topo.Links))
	fmt.Printf("sessions: %d opened, %d rejected (%.0f%% acceptance), %d closed\n",
		opened, rejected, 100*float64(opened)/float64(opened+rejected), st.Closed)
	fmt.Printf("setup latency %.1f cycles mean (max %.0f), %.2f backtracks/setup\n",
		st.SetupLatency.Mean(), st.SetupLatency.Max(), st.SetupBacktracks.Mean())
	fmt.Printf("stream traffic: %d flits delivered, latency %.2f cycles, jitter %.3f\n",
		st.FlitsDelivered, st.Latency.Mean(), st.Jitter.Mean())
	fmt.Printf("best-effort: %d/%d delivered, latency %.2f cycles\n",
		st.BEDelivered, st.BEGenerated, st.BELatency.Mean())
}

// newLCG returns a tiny deterministic generator so the example does not
// depend on simulation internals.
func newLCG(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 16
	}
}
