// Benchmarks regenerating the paper's evaluation: one benchmark per
// figure of §5.2, one per ablation from DESIGN.md, plus microbenchmarks
// of the router's hot paths. Figure benchmarks use a shortened
// measurement window with a trimmed load sweep so `go test -bench=.`
// completes in minutes; cmd/mmrbench runs the full-resolution versions.
//
// Key series values are reported as custom benchmark metrics so the
// paper-vs-measured shape is visible straight from the benchmark output
// (e.g. biased vs fixed jitter at 90% load).
package mmr

import (
	"testing"

	"mmr/internal/exp"
	"mmr/internal/router"
	"mmr/internal/sched"
	"mmr/internal/sim"
	"mmr/internal/stats"
	"mmr/internal/traffic"
)

// benchOpts is the shortened window used by all figure benchmarks.
func benchOpts() exp.Options {
	return exp.Options{
		Warmup:  3_000,
		Measure: 15_000,
		Seed:    1,
		Loads:   []float64{0.3, 0.6, 0.9},
	}
}

// report pulls one series value out of a figure and reports it as a
// benchmark metric.
func report(b *testing.B, fig *stats.Figure, series string, x float64, metric string) {
	b.Helper()
	s := fig.FindSeries(series)
	if s == nil {
		b.Fatalf("series %q missing from %q", series, fig.Title)
	}
	y, ok := s.YAt(x)
	if !ok {
		b.Fatalf("series %q has no point at %v", series, x)
	}
	b.ReportMetric(y, metric)
}

// BenchmarkFigure3 regenerates Figure 3 (jitter vs offered load, fixed
// and biased priorities, 1-8 candidates).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, res.Figures[1], "8C biased", 0.9, "jitter-biased8C@0.9")
			report(b, res.Figures[1], "8C fixed", 0.9, "jitter-fixed8C@0.9")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (delay vs offered load).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, res.Figures[0], "2C biased", 0.6, "µs-biased2C@0.6")
			report(b, res.Figures[1], "8C biased", 0.9, "µs-biased8C@0.9")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5 (delay and jitter for biased,
// fixed, Autonet and the perfect switch at 8 candidates).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, res.Figures[1], "8C biased", 0.9, "jitter-biased@0.9")
			report(b, res.Figures[1], "DEC (Autonet)", 0.9, "jitter-autonet@0.9")
			report(b, res.Figures[1], "perfect", 0.9, "jitter-perfect@0.9")
		}
	}
}

// BenchmarkUtilization regenerates the §5.2 candidate-count/utilization
// observation.
func BenchmarkUtilization(b *testing.B) {
	opts := benchOpts()
	opts.Loads = []float64{0.9}
	for i := 0; i < b.N; i++ {
		res, err := exp.UtilizationSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, res.Figures[0], "1C biased", 0.9, "util-1C@0.9")
			report(b, res.Figures[0], "8C biased", 0.9, "util-8C@0.9")
		}
	}
}

// BenchmarkFigureVBR regenerates the VBR/MPEG evaluation (the §6 next
// step, carried out by the follow-on MMR paper).
func BenchmarkFigureVBR(b *testing.B) {
	opts := benchOpts()
	opts.Loads = []float64{0.3, 0.6}
	for i := 0; i < b.N; i++ {
		res, err := exp.FigureVBR(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, res.Figures[1], "8C biased", 0.6, "vbr-jitter-biased@0.6")
			report(b, res.Figures[1], "8C fixed", 0.6, "vbr-jitter-fixed@0.6")
		}
	}
}

// BenchmarkNetworkSweep regenerates the multi-router end-to-end sweep.
func BenchmarkNetworkSweep(b *testing.B) {
	opts := benchOpts()
	opts.Loads = []float64{0.2, 0.4}
	for i := 0; i < b.N; i++ {
		res, err := exp.NetworkSweep(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(b, res.Figures[0], "latency (cycles)", 0.4, "net-latency@0.4")
		}
	}
}

// Ablation benchmarks (DESIGN.md A1-A10).

func BenchmarkAblationA1LinkSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA2Candidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA3VirtualChannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA4RoundMultiplier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA5ConcurrencyFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA6HybridTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA7PIMIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA8VCMBanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.AblationA8()
	}
}

func BenchmarkAblationA9EPBvsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA10Arbiters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA10(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA11PrioritySchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationA11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// Microbenchmarks of the router's hot paths.

// BenchmarkRouterStep measures one flit cycle of the paper's 8×8 router
// under a 0.8 workload — the cost that dominates every experiment.
func BenchmarkRouterStep(b *testing.B) {
	cfg := router.PaperConfig()
	r, err := router.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := traffic.Generate(traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: 0.8, MaxPortLoad: 1,
	}, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.EstablishWorkload(wl); err != nil {
		b.Fatal(err)
	}
	r.Run(5_000, 0) // warm the queues
	b.ReportAllocs() // steady state must stay 0 allocs/op (see alloc_test.go)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkPriorityArbiter measures one switch-scheduling decision with
// full candidate sets.
func BenchmarkPriorityArbiter(b *testing.B) {
	const n = 8
	arb := sched.NewPriorityArbiter(0)
	cands := make([][]sched.Candidate, n)
	for in := 0; in < n; in++ {
		for o := 0; o < n; o++ {
			cands[in] = append(cands[in], sched.Candidate{
				Input: in, VC: o, Output: (in + o) % n,
				Phase: sched.PhaseGuaranteed, Priority: float64((in*7 + o*3) % 11),
			})
		}
	}
	grants := make([]int, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.Schedule(cands, grants)
	}
}

// BenchmarkLinkScheduler measures candidate selection over a 256-VC port
// with a realistic number of eligible channels.
func BenchmarkLinkScheduler(b *testing.B) {
	cfg := router.PaperConfig()
	r, err := router.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := traffic.Generate(traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: 0.9, MaxPortLoad: 1,
	}, sim.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.EstablishWorkload(wl); err != nil {
		b.Fatal(err)
	}
	r.Run(2_000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	// Step exercises all 8 link schedulers + arbiter + transmit; report
	// per-step cost at high load.
	for i := 0; i < b.N; i++ {
		r.Step()
	}
}

// BenchmarkEstablishWorkload measures setup cost: building a paper router
// and admitting a full 0.9-load workload through Establish — the price
// every sweep cell pays before its first cycle.
func BenchmarkEstablishWorkload(b *testing.B) {
	cfg := router.PaperConfig()
	wl, err := traffic.Generate(traffic.WorkloadConfig{
		Ports: cfg.Ports, Link: cfg.Link, Rates: traffic.PaperRates,
		TargetLoad: 0.9, MaxPortLoad: 1,
	}, sim.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := router.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n, err := r.EstablishWorkload(wl)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(n), "conns")
		}
	}
}
